//! Offline shim for `serde_json`: JSON text over the shim serde [`Value`].
//!
//! Implements the subset of the real API the workspace uses:
//! [`to_value`], [`from_value`], [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`Value`]/[`Number`] types (re-exported from the
//! shim `serde`, where the data model lives). The emitted text is
//! deterministic: object keys keep insertion order, floats use Rust's
//! shortest round-trippable formatting.

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

use serde::{DeserializeOwned, Serialize};

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Infallible in the shim; the `Result` mirrors the real API.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a deserializable type from a [`Value`] tree.
///
/// # Errors
/// Returns an [`Error`] describing the first mismatch between the value
/// tree and the target type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
/// Infallible in the shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
/// Infallible in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
///
/// # Errors
/// Returns an [`Error`] with a byte offset on malformed input, or a
/// type-mismatch description if the text parses but does not fit `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let text = v.to_string();
                out.push_str(&text);
                // serde_json always marks floats as floats.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl std::fmt::Display) -> Error {
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(byte) => {
                    // Bulk-copy the run up to the next quote, escape or
                    // non-ASCII byte. (Validating from the *whole*
                    // remaining input per character — the previous
                    // implementation — made string-heavy documents
                    // quadratic to parse; artifact-sized payloads on the
                    // qssd hot path hit that hard.)
                    if byte < 0x80 {
                        let rest = &self.bytes[self.pos..];
                        let run = rest
                            .iter()
                            .position(|&b| b == b'"' || b == b'\\' || b >= 0x80)
                            .unwrap_or(rest.len());
                        debug_assert!(run > 0, "peeked byte starts the run");
                        out.push_str(
                            std::str::from_utf8(&rest[..run]).expect("ASCII bytes are UTF-8"),
                        );
                        self.pos += run;
                    } else {
                        // One non-ASCII char: decode from a bounded
                        // window (input is a &str, so the bytes are
                        // valid UTF-8 and `pos` sits on a boundary).
                        let end = (self.pos + 4).min(self.bytes.len());
                        let window = &self.bytes[self.pos..end];
                        let c = match std::str::from_utf8(window) {
                            Ok(text) => text.chars().next(),
                            Err(e) if e.valid_up_to() > 0 => {
                                std::str::from_utf8(&window[..e.valid_up_to()])
                                    .expect("validated prefix")
                                    .chars()
                                    .next()
                            }
                            Err(_) => None,
                        }
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let value = Value::Object(vec![
            ("a".into(), Value::Number(Number::UInt(7))),
            ("b".into(), Value::Bool(true)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::String("x\n\"y\"".into())]),
            ),
            ("d".into(), Value::Number(Number::from(-3i64))),
            ("e".into(), Value::Number(Number::Float(1.5))),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let back: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, Value::String("é😀".into()));
    }
}
