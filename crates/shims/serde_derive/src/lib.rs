//! Offline shim for `serde_derive`: real `Serialize`/`Deserialize` derives.
//!
//! The derives target the shim `serde`'s `Value`-tree data model and
//! mirror real serde's default encodings: structs as objects, newtype
//! structs transparent, tuple structs as arrays, enums externally tagged.
//! The input is parsed directly from the token stream (no `syn`/`quote`
//! in an offline environment), which restricts derives to non-generic
//! types — everything the workspace derives on qualifies. Attributes
//! (`#[serde(...)]` included) are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim edition: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_serialize(&input)
        .parse()
        .expect("shim serde_derive generated invalid Rust for Serialize")
}

/// Derives `serde::Deserialize` (shim edition: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_deserialize(&input)
        .parse()
        .expect("shim serde_derive generated invalid Rust for Deserialize")
}

// --------------------------------------------------------------- parsing

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Skips outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`) starting at `i`; returns the next index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed attribute group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(item: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("shim serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("shim serde_derive: expected a type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("shim serde_derive does not support generic types (deriving on `{name}`)");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("shim serde_derive: unsupported struct body {other:?}"),
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("shim serde_derive: expected an enum body, found {other:?}"),
        },
        other => panic!("shim serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

/// Field names of a named-field body. Types are irrelevant: the generated
/// code relies on inference, so only the identifiers before each top-level
/// `:` are collected (tracking `<...>` depth to skip commas inside
/// generic arguments).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("shim serde_derive: expected a field name, found {other:?}"),
        };
        fields.push(name);
        let mut angle = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a tuple body (top-level comma count, ignoring a trailing one).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i64;
    for (idx, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("shim serde_derive: expected a variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("shim serde_derive does not support explicit enum discriminants")
            }
            None => {}
            other => panic!("shim serde_derive: unexpected token after a variant: {other:?}"),
        }
        variants.push((name, fields));
    }
    variants
}

// ----------------------------------------------------------- generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{variant} => ::serde::derive::unit_variant(\"{variant}\")")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{variant}(__f0) => ::serde::derive::newtype_variant(\
                         \"{variant}\", ::serde::Serialize::to_value(__f0))"
                    ),
                    Fields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => ::serde::derive::tuple_variant(\
                             \"{variant}\", ::std::vec![{}])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{variant} {{ {binds} }} => \
                             ::serde::derive::struct_variant(\"{variant}\", ::std::vec![{}])",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::derive::field(__value, \"{name}\", \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!("::serde::derive::tuple_field(__value, \"{name}\", {i}, {arity})?")
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => {
                        format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant})")
                    }
                    Fields::Tuple(1) => format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(\
                         ::serde::derive::de(::serde::derive::content(\
                         __content, \"{name}::{variant}\")?)?))"
                    ),
                    Fields::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!(
                                    "::serde::derive::tuple_field(\
                                     __c, \"{name}::{variant}\", {i}, {arity})?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{variant}\" => {{ \
                             let __c = ::serde::derive::content(__content, \"{name}::{variant}\")?; \
                             ::std::result::Result::Ok({name}::{variant}({})) }}",
                            items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::derive::field(\
                                     __c, \"{name}::{variant}\", \"{f}\")?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{variant}\" => {{ \
                             let __c = ::serde::derive::content(__content, \"{name}::{variant}\")?; \
                             ::std::result::Result::Ok({name}::{variant} {{ {} }}) }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "let (__tag, __content) = ::serde::derive::variant_parts(__value, \"{name}\")?;\n\
                 match __tag {{\n\
                     {},\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
