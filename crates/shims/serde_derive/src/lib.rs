//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no code
//! path serializes through serde), so empty expansions are sufficient.
//! See `crates/shims/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
