//! Support functions called by code the shim `serde_derive` generates.
//!
//! Generated impls only build [`Value`] trees and pick them apart again;
//! everything error-prone (lookups, arity checks, enum tagging) lives here
//! so the generated token streams stay small and readable.

use crate::value::Value;
use crate::{DeserializeOwned, Error};

/// Serializes a unit enum variant: `"Name"`.
pub fn unit_variant(name: &str) -> Value {
    Value::String(name.to_owned())
}

/// Serializes a newtype enum variant: `{"Name": content}`.
pub fn newtype_variant(name: &str, content: Value) -> Value {
    Value::Object(vec![(name.to_owned(), content)])
}

/// Serializes a tuple enum variant: `{"Name": [fields...]}`.
pub fn tuple_variant(name: &str, fields: Vec<Value>) -> Value {
    Value::Object(vec![(name.to_owned(), Value::Array(fields))])
}

/// Serializes a struct enum variant: `{"Name": {fields...}}`.
pub fn struct_variant(name: &str, fields: Vec<(String, Value)>) -> Value {
    Value::Object(vec![(name.to_owned(), Value::Object(fields))])
}

/// Splits an externally tagged enum value into `(tag, content)`.
pub fn variant_parts<'v>(
    value: &'v Value,
    ty: &str,
) -> Result<(&'v str, Option<&'v Value>), Error> {
    match value {
        Value::String(tag) => Ok((tag, None)),
        Value::Object(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, Some(&pairs[0].1))),
        other => Err(Error::custom(format!(
            "expected an externally tagged `{ty}` variant, found {}",
            other.kind()
        ))),
    }
}

/// The content of a non-unit variant (errors if the tag came alone).
pub fn content<'v>(content: Option<&'v Value>, what: &str) -> Result<&'v Value, Error> {
    content.ok_or_else(|| Error::custom(format!("variant `{what}` is missing its content")))
}

/// Deserializes a value with type inference at the call site.
pub fn de<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Looks up and deserializes a named field of a struct (or struct variant).
pub fn field<T: DeserializeOwned>(value: &Value, ty: &str, name: &str) -> Result<T, Error> {
    let field = value
        .get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` of `{ty}`")))?;
    T::from_value(field)
        .map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {}", e.message())))
}

/// Extracts and deserializes one positional field of a tuple struct or
/// tuple variant of the given arity (arity 1 is transparent, like serde).
pub fn tuple_field<T: DeserializeOwned>(
    value: &Value,
    ty: &str,
    index: usize,
    arity: usize,
) -> Result<T, Error> {
    let item = if arity == 1 {
        value
    } else {
        let items = value.as_array().ok_or_else(|| {
            Error::custom(format!(
                "expected an array for `{ty}`, found {}",
                value.kind()
            ))
        })?;
        if items.len() != arity {
            return Err(Error::custom(format!(
                "expected {arity} items for `{ty}`, found {}",
                items.len()
            )));
        }
        &items[index]
    };
    T::from_value(item)
        .map_err(|e| Error::custom(format!("field {index} of `{ty}`: {}", e.message())))
}
