//! The JSON value tree shared by the shim serde family.

/// An arbitrary-precision-ish JSON number: unsigned, signed or float.
///
/// Mirrors `serde_json::Number`: non-negative integers are stored as
/// `u64`, negative integers as `i64`, everything else as `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                (None, None) => self.as_i64() == other.as_i64(),
                _ => false,
            },
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number::UInt(v)
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number::UInt(v as u64)
        } else {
            Number::Int(v)
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a map),
/// so serialized artifacts are deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` in an object (`None` for other value kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short human-readable description of the value kind, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
