//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! that swapping in the real serde is a manifest-only change, but nothing
//! in-tree serializes through serde. The traits are therefore empty
//! markers with blanket implementations, and the derives (re-exported from
//! the shim `serde_derive`) expand to nothing. See `crates/shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
