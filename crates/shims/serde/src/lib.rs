//! Offline shim for `serde`: a real (if small) serialization framework.
//!
//! Earlier revisions of this shim were empty marker traits — the workspace
//! only *derived* `Serialize`/`Deserialize` and never serialized anything.
//! The `qss` pipeline API now emits every stage artifact as JSON, so the
//! shim grew into a working mini-serde built around a JSON [`Value`] tree:
//!
//! * [`Serialize`] converts a value into a [`Value`],
//! * [`Deserialize`] rebuilds a value from a [`Value`],
//! * the companion `serde_derive` shim generates both impls for structs
//!   and enums (externally tagged, like real serde's default),
//! * the companion `serde_json` shim renders a [`Value`] to JSON text and
//!   parses it back.
//!
//! The data model intentionally mirrors `serde_json`'s defaults (structs
//! as objects, tuples as arrays, newtypes transparent, enums externally
//! tagged, maps with string keys as objects) so that swapping in the real
//! crates keeps the wire format. Maps with non-string keys are encoded as
//! arrays of `[key, value]` pairs — real `serde_json` errors on those, so
//! avoid them in types that must stay format-compatible.
//!
//! See `crates/shims/README.md` for the scope of every shim.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod derive;
mod impls;
mod value;

pub use value::{Number, Value};

use std::fmt;

/// Error produced when deserializing from a [`Value`] fails.
///
/// (Real serde keeps errors in `serde_json`; the shim defines the type
/// here so that generated code only ever references the `serde` crate.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON [`Value`] data model.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde (`#[derive(Deserialize)]` expands to `impl<'de> Deserialize<'de>`);
/// the shim never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
