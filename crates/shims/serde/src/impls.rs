//! `Serialize`/`Deserialize` implementations for std types.

use crate::value::{Number, Value};
use crate::{Deserialize, DeserializeOwned, Error, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

fn expected(what: &str, got: &Value) -> Error {
    Error::custom(format!("expected {what}, found {}", got.kind()))
}

// ---------------------------------------------------------------- numbers

macro_rules! int_impl {
    ($ty:ty, via $via:ty, $as:ident) => {
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as $via))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .$as()
                    .ok_or_else(|| expected(stringify!($ty), value))?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "number {raw} is out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    };
}

int_impl!(u8, via u64, as_u64);
int_impl!(u16, via u64, as_u64);
int_impl!(u32, via u64, as_u64);
int_impl!(u64, via u64, as_u64);
int_impl!(usize, via u64, as_u64);
int_impl!(i8, via i64, as_i64);
int_impl!(i16, via i64, as_i64);
int_impl!(i32, via i64, as_i64);
int_impl!(i64, via i64, as_i64);
int_impl!(isize, via i64, as_i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| expected("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| expected("f32", value))
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| expected("boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// `&'static str` deserializes through a global intern pool (the shim
/// cannot borrow from the transient [`Value`]). Types such as the cost
/// models keep `&'static str` profile names; interning leaks at most one
/// copy per distinct string ever deserialized.
impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| expected("string", value))?;
        static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        let mut pool = POOL
            .get_or_init(|| Mutex::new(BTreeSet::new()))
            .lock()
            .expect("intern pool poisoned");
        if let Some(interned) = pool.get(s) {
            return Ok(interned);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        pool.insert(leaked);
        Ok(leaked)
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Maps serialize as JSON objects when every key serializes to a string
/// (the `serde_json` encoding); any other key type falls back to an array
/// of `[key, value]` pairs, which real `serde_json` would reject — see the
/// crate docs.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::String(s) => (s, v),
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            )
        } else {
            Value::Array(
                pairs
                    .into_iter()
                    .map(|(k, v)| Value::Array(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<'de, K: DeserializeOwned + Ord, V: DeserializeOwned> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::String(k.clone()))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            Value::Array(items) => items
                .iter()
                .map(|item| {
                    let pair = item.as_array().ok_or_else(|| {
                        Error::custom("expected a [key, value] pair in map encoding")
                    })?;
                    if pair.len() != 2 {
                        return Err(Error::custom(format!(
                            "expected a [key, value] pair, found {} items",
                            pair.len()
                        )));
                    }
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                })
                .collect(),
            other => Err(expected("object or array of pairs", other)),
        }
    }
}

// ------------------------------------------------------------------ tuples

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(expected("null", value))
        }
    }
}

macro_rules! tuple_impl {
    ($len:literal => $(($idx:tt, $name:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| expected("array", value))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a tuple of {} items, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1 => (0, A));
tuple_impl!(2 => (0, A), (1, B));
tuple_impl!(3 => (0, A), (1, B), (2, C));
tuple_impl!(4 => (0, A), (1, B), (2, C), (3, D));

// ---------------------------------------------------------- Value itself

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
