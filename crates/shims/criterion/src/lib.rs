//! Offline shim for `criterion`: a minimal but real benchmark harness.
//!
//! Implements the subset of the Criterion 0.5 API used by this workspace
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros and `black_box`). Measurements are genuine: every benchmark is
//! warmed up, then timed over `sample_size` samples whose iteration count
//! is calibrated so a sample lasts at least ~2 ms, and the median and mean
//! per-iteration times are printed to stdout.
//!
//! Set `QSS_BENCH_FAST=1` to cut sample counts (used by CI smoke runs).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one parameterised benchmark case, e.g.
/// `divider_irrelevance/12`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-sample wall times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count per sample so
        // that one sample lasts at least ~2 ms (or a single iteration if
        // the routine itself is slower than that).
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn per_iter_nanos(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect()
    }
}

/// Formats a per-iteration time in adaptive units, Criterion-style.
fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.criterion.fast {
            3
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finishes the group (separator line in the report).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let mut per_iter = bencher.per_iter_nanos();
        if per_iter.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  [{:.0} elem/s]", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  [{:.0} B/s]", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<40} median {:>12}  mean {:>12}  ({} samples × {} iters){throughput}",
            self.name,
            format_nanos(median),
            format_nanos(mean),
            per_iter.len(),
            bencher.iters_per_sample,
        );
    }
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            fast: std::env::var_os("QSS_BENCH_FAST").is_some(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { fast: true };
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("divider", 12).to_string(), "divider/12");
    }
}
