//! Offline shim for `proptest`: a minimal, deterministic property-testing
//! harness implementing the subset of the proptest 1.x API this workspace
//! uses — the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer ranges and tuples as strategies and
//! `prop::collection::vec`.
//!
//! Values are generated from a deterministic xorshift generator seeded
//! from the test's module path and name, so failures are reproducible run
//! to run. There is no shrinking: the failing case is reported verbatim.

use std::fmt;

/// Deterministic random source driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test identifier.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the name; never zero (xorshift fixed point).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration (only the case count is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type (shim for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (shim for `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports, matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests over generated inputs (shim for
/// `proptest::proptest!`). Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy,
/// ...) { body }` items carrying attributes such as `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let description = [
                    $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                ].join(", ");
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {} of {}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err,
                        description
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::new("x");
        let mut b = crate::TestRng::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, config and assertions together.
        #[test]
        fn macro_round_trip(xs in prop::collection::vec(0u32..10, 1..5), scale in 1u64..4) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.len() < 5);
            let total: u64 = xs.iter().map(|&x| x as u64 * scale).sum();
            prop_assert_eq!(total % scale, 0);
        }

        #[test]
        fn flat_map_and_map_compose(v in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0u32..100, n)
        }).prop_map(|xs| xs.len()), _unused in 0u32..2) {
            prop_assert!((1..4).contains(&v));
        }
    }
}
