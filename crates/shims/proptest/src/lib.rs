//! Offline shim for `proptest`: a minimal, deterministic property-testing
//! harness implementing the subset of the proptest 1.x API this workspace
//! uses — the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer ranges and tuples as strategies and
//! `prop::collection::vec`.
//!
//! Values are generated from a deterministic xorshift generator seeded
//! from the test's module path and name, so failures are reproducible run
//! to run.
//!
//! # Shrinking
//!
//! When a case fails, the runner greedily *shrinks* it: every strategy
//! can propose simplifications of a failing value
//! ([`Strategy::shrink`]), the runner keeps any candidate that still
//! fails and repeats until no candidate fails (or the attempt budget runs
//! out), then reports the minimized inputs. Ranges shrink towards their
//! start, collections drop and shrink elements, tuples shrink one
//! component at a time. `prop_map`/`prop_flat_map` outputs do not shrink
//! (the mapping cannot be inverted); strategies that need domain-aware
//! shrinking — like the workspace's random-net generator — implement
//! [`Strategy`] directly and override `shrink`. Because generation is
//! seeded deterministically, the same failure shrinks the same way on
//! every run.

use std::fmt;

/// Deterministic random source driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test identifier.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the name; never zero (xorshift fixed point).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration (only the case count is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type (shim for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first.
    ///
    /// Called by the runner on failing values only; every candidate must
    /// itself be a value this strategy could describe. The default is no
    /// shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }

            /// Shrinks towards the range start: the minimum first, then
            /// the halfway point, then one step down.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (v, lo) = (*value as i128, self.start as i128);
                let mut out = Vec::new();
                for cand in [lo, lo + (v - lo) / 2, v - 1] {
                    if cand >= lo && cand < v && !out.contains(&(cand as $t)) {
                        out.push(cand as $t);
                    }
                }
                out
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            /// Shrinks one component at a time, keeping the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (shim for `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Shrinks by truncating to the minimum length, dropping single
        /// elements (respecting the minimum), and shrinking each element
        /// in place.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.min;
            if value.len() > min {
                out.push(value[..min].to_vec());
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    if shorter.len() >= min {
                        out.push(shorter);
                    }
                }
            }
            for (i, element) in value.iter().enumerate() {
                for cand in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Upper bound on shrink candidates tried per failing case; generation is
/// deterministic, so hitting the budget still reports a reproducible
/// (just less minimal) counterexample.
const MAX_SHRINK_ATTEMPTS: usize = 1024;

/// Drives one property: generates `config.cases` values from `strategy`,
/// runs `check` on each, and on failure greedily shrinks the value before
/// panicking with the minimized counterexample. The `proptest!` macro
/// expands to a call of this function; `describe` renders a value with
/// the argument names of the property.
pub fn run_property<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    describe: impl Fn(&S::Value) -> String,
    check: impl Fn(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: Clone,
{
    let mut rng = TestRng::new(name);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let Err(error) = check(&value) else {
            continue;
        };
        let (minimized, min_error, attempts) = shrink_failure(&strategy, &check, value, error);
        panic!(
            "proptest {} failed at case {} of {}: {}\n  inputs ({}): {}",
            name,
            case,
            config.cases,
            min_error,
            if attempts == 0 {
                "not shrinkable".to_string()
            } else {
                format!("minimized, {attempts} shrink attempt(s)")
            },
            describe(&minimized),
        );
    }
}

/// Greedy shrinking: repeatedly adopt the first candidate simplification
/// that still fails, until none fails or the attempt budget is spent.
/// Returns the most-shrunk failing value, its error, and the number of
/// candidates tried. Exposed so harnesses outside the `proptest!` macro
/// (and the shim's own tests) can reuse the loop.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    check: &impl Fn(&S::Value) -> Result<(), TestCaseError>,
    mut value: S::Value,
    mut error: TestCaseError,
) -> (S::Value, TestCaseError, usize) {
    let mut attempts = 0;
    'progress: loop {
        for candidate in strategy.shrink(&value) {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break 'progress;
            }
            attempts += 1;
            if let Err(e) = check(&candidate) {
                value = candidate;
                error = e;
                continue 'progress;
            }
        }
        break;
    }
    (value, error, attempts)
}

/// The common imports, matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests over generated inputs (shim for
/// `proptest::proptest!`). Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy,
/// ...) { body }` items carrying attributes such as `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // The arguments are driven as one tuple strategy so the
            // runner can generate *and shrink* them together.
            $crate::run_property(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                ($($strategy,)+),
                |__vals| {
                    let ($($arg,)+) = __vals;
                    [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ")
                },
                |__vals| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::new("x");
        let mut b = crate::TestRng::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, config and assertions together.
        #[test]
        fn macro_round_trip(xs in prop::collection::vec(0u32..10, 1..5), scale in 1u64..4) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.len() < 5);
            let total: u64 = xs.iter().map(|&x| x as u64 * scale).sum();
            prop_assert_eq!(total % scale, 0);
        }

        #[test]
        fn flat_map_and_map_compose(v in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0u32..100, n)
        }).prop_map(|xs| xs.len()), _unused in 0u32..2) {
            prop_assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn ranges_shrink_towards_start() {
        let candidates = Strategy::shrink(&(3u32..17), &9);
        assert!(candidates.contains(&3), "the minimum comes first");
        assert!(candidates.iter().all(|&c| (3..9).contains(&c)));
        assert!(Strategy::shrink(&(3u32..17), &3).is_empty());
    }

    #[test]
    fn shrinking_minimizes_a_failing_vector() {
        // Property "every element < 5": greedy shrinking must reduce any
        // failing vector to the single minimal offender `[5]`.
        let strategy = prop::collection::vec(0u32..10, 0..8);
        let check = |v: &Vec<u32>| {
            if v.iter().all(|&x| x < 5) {
                Ok(())
            } else {
                Err(crate::TestCaseError::fail("contains an element >= 5"))
            }
        };
        let mut rng = crate::TestRng::new("shrink-minimizes");
        let failing = loop {
            let v = Strategy::generate(&strategy, &mut rng);
            if check(&v).is_err() {
                break v;
            }
        };
        let (minimized, _, attempts) = crate::shrink_failure(
            &strategy,
            &check,
            failing,
            crate::TestCaseError::fail("seed"),
        );
        assert_eq!(minimized, vec![5], "greedy shrink reaches the minimum");
        assert!(attempts > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let strategy = (0u32..100, prop::collection::vec(0u32..100, 0..6));
        let check = |v: &(u32, Vec<u32>)| {
            if v.0 + v.1.iter().sum::<u32>() < 50 {
                Ok(())
            } else {
                Err(crate::TestCaseError::fail("sum too large"))
            }
        };
        let failing = (60u32, vec![70u32, 80]);
        let a = crate::shrink_failure(
            &strategy,
            &check,
            failing.clone(),
            crate::TestCaseError::fail("x"),
        );
        let b = crate::shrink_failure(&strategy, &check, failing, crate::TestCaseError::fail("x"));
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2);
    }
}
