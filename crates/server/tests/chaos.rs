//! Seeded fault-injection harness for `qssd`.
//!
//! Every scenario here throws one specific kind of abuse at a real
//! spawned daemon — half-written requests, dribbled bytes, half-closed
//! sockets, oversized floods, clients dying mid-response, binary
//! garbage, connection storms past the cap, idle peers, and schedule
//! searches with impossible deadlines — and then asserts the two
//! invariants that make the service robust:
//!
//! 1. the server still answers a clean `schedule` request correctly, and
//! 2. a `shutdown` request drains it to a clean exit-0.
//!
//! All randomness flows from one seeded splitmix64 stream
//! (`QSS_CHAOS_SEED` overrides the seed), so a CI failure replays
//! exactly with the seed it prints.

use qss::remote::{parse_response, with_retry, Client, ClientError, ErrorKind, RetryPolicy};
use qss::PipelineConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

// ------------------------------------------------------------ seeded rng

const DEFAULT_SEED: u64 = 0xC0FF_EE00_D00D;

fn chaos_seed() -> u64 {
    std::env::var("QSS_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(DEFAULT_SEED)
}

/// splitmix64: the same deterministic stream the client backoff uses.
struct Rng(u64);

impl Rng {
    fn for_scenario(name: &str) -> Rng {
        // Mix the scenario name in so scenarios draw independent streams
        // from one seed; print the seed so failures replay.
        let mut state = chaos_seed();
        for b in name.bytes() {
            state = state.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        eprintln!("chaos[{name}]: QSS_CHAOS_SEED={}", chaos_seed());
        Rng(state)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

// --------------------------------------------------------------- daemon

/// A spawned `qssd` process plus its discovered address.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qssd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qssd");
        let stdout = child.stdout.take().expect("qssd stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the discovery line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("discovery line carries the address")
            .to_string();
        Daemon { child, addr }
    }

    /// Requires the daemon to exit cleanly within a few seconds.
    fn assert_clean_exit(mut self) {
        for _ in 0..400 {
            if let Some(status) = self.child.try_wait().expect("poll qssd") {
                assert!(status.success(), "qssd exited with {status}");
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let _ = self.child.kill();
        panic!("qssd did not exit within 10s of the shutdown request");
    }
}

/// The clean-schedule invariant every scenario re-checks afterwards.
fn assert_clean_schedule(addr: &str) {
    let mut client = Client::connect(addr).expect("connect for the clean check");
    let reply = client
        .schedule(ECHO_SOURCE, None)
        .expect("clean schedule after the scenario");
    assert!(!reply.fingerprint.is_empty());
}

fn shutdown_cleanly(daemon: Daemon) {
    let mut client = Client::connect(&*daemon.addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown request");
    daemon.assert_clean_exit();
}

const ECHO_SOURCE: &str = "PROCESS echo (In DPORT a, Out DPORT b) {\n\
    \x20   int x;\n\
    \x20   while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x * 2, 1); }\n\
    }\n";

fn schedule_request_line(source: &str, config: Option<&PipelineConfig>) -> String {
    let request = qss::remote::Request {
        version: None,
        id: Some(1),
        kind: qss::remote::RequestKind::Schedule,
        source: Some(source.to_string()),
        config: config.cloned(),
        events: Vec::new(),
        include_task: false,
    };
    serde_json::to_string(&request.to_value()).expect("request serializes")
}

/// A divider chain as FlowC source: stage `i` consumes `k` items per
/// firing, so scheduling the environment input takes `k^depth` source
/// firings — a search that runs far beyond any sane deadline, which is
/// exactly what the budget tests need.
fn pathological_source(depth: usize, k: u32) -> String {
    let mut out = String::from("SYSTEM chain {\n");
    for i in 0..depth {
        out.push_str(&format!("    CHANNEL s{i}.out -> s{}.inp;\n", i + 1));
    }
    out.push_str("}\n");
    out.push_str(
        "PROCESS s0 (In DPORT go, Out DPORT out) {\n\
         \x20   int x;\n\
         \x20   while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }\n\
         }\n",
    );
    for i in 1..=depth {
        out.push_str(&format!(
            "PROCESS s{i} (In DPORT inp, Out DPORT out) {{\n\
             \x20   int x;\n\
             \x20   while (1) {{ READ_DATA(inp, x, {k}); WRITE_DATA(out, x, 1); }}\n\
             }}\n"
        ));
    }
    out
}

/// A config whose search budget trips long before the node cap does.
fn tight_budget_config(deadline_ms: u64) -> PipelineConfig {
    let mut config = PipelineConfig::default();
    config.schedule.max_nodes = 500_000_000;
    config.budget.deadline_ms = Some(deadline_ms);
    config
}

// ---------------------------------------------------------- chaos proxy

/// Client→server fault injection for one proxied connection.
enum Fault {
    /// Forward at most `chunk` bytes per `delay` tick.
    Dribble { chunk: usize, delay: Duration },
    /// Forward `bytes` bytes, then sever both directions.
    CutAfter { bytes: usize },
}

/// A one-connection TCP proxy: the server→client direction is pumped
/// verbatim, the client→server direction goes through the [`Fault`].
struct ChaosProxy {
    addr: String,
}

impl ChaosProxy {
    fn spawn(upstream: String, fault: Fault) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        thread::spawn(move || {
            let Ok((client, _)) = listener.accept() else {
                return;
            };
            let Ok(server) = TcpStream::connect(&upstream) else {
                return;
            };
            let (Ok(client_read), Ok(server_write)) = (client.try_clone(), server.try_clone())
            else {
                return;
            };
            // Server → client, verbatim.
            let back = thread::spawn(move || {
                let mut from = server;
                let mut to = client;
                let mut buf = [0u8; 4096];
                while let Ok(n) = from.read(&mut buf) {
                    if n == 0 || to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                    let _ = to.flush();
                }
                let _ = to.shutdown(Shutdown::Write);
            });
            // Client → server, through the fault.
            let mut from = client_read;
            let mut to = server_write;
            match fault {
                Fault::Dribble { chunk, delay } => {
                    let mut buf = vec![0u8; chunk.max(1)];
                    while let Ok(n) = from.read(&mut buf) {
                        if n == 0 || to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                        let _ = to.flush();
                        thread::sleep(delay);
                    }
                    let _ = to.shutdown(Shutdown::Write);
                }
                Fault::CutAfter { bytes } => {
                    let mut remaining = bytes;
                    let mut buf = [0u8; 256];
                    while remaining > 0 {
                        let want = remaining.min(buf.len());
                        match from.read(&mut buf[..want]) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if to.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                                let _ = to.flush();
                                remaining -= n;
                            }
                        }
                    }
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                }
            }
            let _ = back.join();
        });
        ChaosProxy { addr }
    }
}

// ------------------------------------------------------------- scenarios

/// Scenario 1: a client writes half a request line and vanishes.
#[test]
fn disconnect_mid_request_leaves_the_server_serving() {
    let daemon = Daemon::spawn(&[]);
    let mut rng = Rng::for_scenario("disconnect_mid_request");
    for _ in 0..4 {
        let line = schedule_request_line(ECHO_SOURCE, None);
        let cut = 1 + rng.below(line.len() as u64 - 1) as usize;
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream
            .write_all(&line.as_bytes()[..cut])
            .expect("write the partial request");
        drop(stream); // no newline ever arrives
    }
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 2: a request dribbles in a few bytes at a time, but faster
/// than the request timeout — it must still succeed.
#[test]
fn dribbled_request_within_the_deadline_succeeds() {
    let daemon = Daemon::spawn(&["--request-timeout", "5000"]);
    let proxy = ChaosProxy::spawn(
        daemon.addr.clone(),
        Fault::Dribble {
            chunk: 23,
            delay: Duration::from_millis(5),
        },
    );
    let mut client = Client::connect(&*proxy.addr).expect("connect through the proxy");
    let reply = client
        .schedule(ECHO_SOURCE, None)
        .expect("dribbled schedule");
    assert!(!reply.fingerprint.is_empty());
    drop(client);
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 3: a slowloris dribbles one byte per tick, slower than the
/// request timeout — the server must cut the line, not wait forever.
#[test]
fn slowloris_line_is_reaped_by_the_request_timeout() {
    let daemon = Daemon::spawn(&["--request-timeout", "250"]);
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    // A short read timeout keeps the probe between bytes from stalling
    // the dribble.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let started = Instant::now();
    let mut cut_off = false;
    // One byte every 40 ms: a full request would take ~10 s against a
    // 250 ms line deadline.
    for b in schedule_request_line(ECHO_SOURCE, None).into_bytes() {
        if stream
            .write_all(&[b])
            .and_then(|()| stream.flush())
            .is_err()
        {
            cut_off = true;
            break;
        }
        thread::sleep(Duration::from_millis(40));
        if started.elapsed() > Duration::from_secs(5) {
            break;
        }
        // A closed peer often surfaces on read before write.
        let mut probe = [0u8; 1];
        match stream.read(&mut probe) {
            Ok(0) => {
                cut_off = true;
                break;
            }
            Ok(_) => panic!("server answered an unfinished request line"),
            Err(_) => {}
        }
    }
    assert!(
        cut_off,
        "the server let a slowloris line dribble past its deadline"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "reaping took {:?}",
        started.elapsed()
    );
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 4: the client half-closes its write side after one full
/// request — the response must still arrive on the intact read side.
#[test]
fn half_closed_socket_still_receives_its_response() {
    let daemon = Daemon::spawn(&[]);
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    let line = schedule_request_line(ECHO_SOURCE, None);
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("newline");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("read the response");
    let (id, result) = parse_response(response.trim()).expect("parse the response");
    assert_eq!(id, Some(1));
    assert!(result.is_ok(), "half-closed request failed: {result:?}");
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 5: a flood of oversized lines gets typed `too_large` answers
/// and the connection stays usable.
#[test]
fn oversized_line_flood_is_answered_and_survived() {
    let daemon = Daemon::spawn(&["--max-line", "1024"]);
    let mut rng = Rng::for_scenario("oversized_flood");
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    for _ in 0..8 {
        let len = 2048 + rng.below(4096) as usize;
        let flood: String = (0..len)
            .map(|_| char::from(b'a' + (rng.below(26) as u8)))
            .collect();
        let response = client.raw_line(&flood).expect("flood answered");
        let (_, result) = parse_response(&response).expect("typed response");
        assert_eq!(result.unwrap_err().kind, ErrorKind::TooLarge);
    }
    // The same connection still schedules.
    let reply = client
        .schedule(ECHO_SOURCE, None)
        .expect("post-flood schedule");
    assert!(!reply.fingerprint.is_empty());
    drop(client);
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 6: the client dies while its (large) response is in flight.
#[test]
fn client_killed_mid_response_does_not_wedge_the_server() {
    let daemon = Daemon::spawn(&[]);
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        let line = schedule_request_line(&pathological_source(2, 2), None);
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("newline");
        // Read a token amount of the response, then vanish.
        let mut partial = [0u8; 16];
        let _ = stream.read(&mut partial);
        drop(stream);
    }
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 7: seeded binary garbage gets typed protocol errors, line
/// after line, without losing the connection.
#[test]
fn binary_garbage_gets_typed_errors_and_the_connection_survives() {
    let daemon = Daemon::spawn(&[]);
    let mut rng = Rng::for_scenario("binary_garbage");
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    for _ in 0..12 {
        let len = 1 + rng.below(200) as usize;
        let mut garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Keep it one non-empty line: no interior newlines, at least one
        // visible byte so the server does not skip it as blank.
        for b in &mut garbage {
            if *b == b'\n' || *b == b'\r' {
                *b = b'?';
            }
        }
        garbage[0] = b'!';
        let line = String::from_utf8_lossy(&garbage).into_owned();
        let response = client.raw_line(&line).expect("garbage answered");
        let (_, result) = parse_response(&response).expect("typed response");
        let kind = result.unwrap_err().kind;
        assert!(
            matches!(kind, ErrorKind::Protocol | ErrorKind::UnknownKind),
            "garbage answered with {kind:?}"
        );
    }
    let reply = client
        .schedule(ECHO_SOURCE, None)
        .expect("post-garbage schedule");
    assert!(!reply.fingerprint.is_empty());
    drop(client);
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 8: connections beyond `--max-connections` are rejected with
/// one typed `busy` line; the retry policy rides it out once capacity
/// frees up.
#[test]
fn connection_cap_rejects_typed_and_retry_recovers() {
    let daemon = Daemon::spawn(&["--max-connections", "2"]);
    let held_one = TcpStream::connect(&daemon.addr).expect("occupy slot 1");
    let held_two = TcpStream::connect(&daemon.addr).expect("occupy slot 2");
    // Give the server a beat to register both connections.
    thread::sleep(Duration::from_millis(100));

    let over_cap = TcpStream::connect(&daemon.addr).expect("tcp connect still accepts");
    let mut response = String::new();
    let mut reader = BufReader::new(over_cap);
    reader.read_line(&mut response).expect("rejection line");
    let (id, result) = parse_response(response.trim()).expect("typed rejection");
    assert_eq!(id, None);
    assert_eq!(result.unwrap_err().kind, ErrorKind::Busy);

    // Free a slot, then let the deterministic retry policy get through.
    drop(held_one);
    let policy = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(200),
        seed: chaos_seed(),
        overall_deadline: Some(Duration::from_secs(20)),
    };
    // A reject-at-accept surfaces as a typed `busy` on the first read
    // (or, on an unlucky race, as EOF — a transport error); the policy
    // retries both.
    let reply = with_retry(&*daemon.addr, &policy, |client| {
        client.schedule(ECHO_SOURCE, None)
    })
    .expect("retry through the connection cap");
    assert!(!reply.fingerprint.is_empty());
    drop(held_two);
    // The cap releases as the held sockets reap; the clean check retries
    // the same way.
    let reply = with_retry(&*daemon.addr, &policy, |client| {
        client.schedule(ECHO_SOURCE, None)
    })
    .expect("clean schedule after the cap scenario");
    assert!(!reply.fingerprint.is_empty());
    shutdown_cleanly(daemon);
}

/// Scenario 9: connections that go quiet are reaped by the idle timeout.
#[test]
fn idle_connections_are_reaped() {
    let daemon = Daemon::spawn(&["--idle-timeout", "200"]);
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    let reply = client
        .schedule(ECHO_SOURCE, None)
        .expect("schedule while fresh");
    assert!(!reply.fingerprint.is_empty());
    // Now go quiet and wait for the reaper: the next read sees EOF.
    let mut stream = TcpStream::connect(&daemon.addr).expect("idle connection");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let started = Instant::now();
    let mut probe = [0u8; 1];
    let reaped = matches!(stream.read(&mut probe), Ok(0) | Err(_));
    assert!(reaped, "idle connection was not reaped");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "idle reap took {elapsed:?}"
    );
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 10 — the tentpole acceptance scenario: a pathological net
/// with a 50 ms budget answers a typed `timeout` within budget + slack,
/// the worker slot frees, coalesced followers inherit the same typed
/// error, and the very next normal request is served correctly.
#[test]
fn tiny_budget_timeout_frees_the_worker_and_reaches_followers() {
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "32"]);
    let source = pathological_source(8, 8);
    let config = tight_budget_config(50);

    // Solo probe: typed timeout, within budget + 100 ms slack.
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    let started = Instant::now();
    let error = client
        .schedule(&source, Some(&config))
        .expect_err("a 50 ms budget cannot schedule k^depth = 16.7M firings");
    let elapsed = started.elapsed();
    let ClientError::Server(wire) = error else {
        panic!("expected a typed server error, got {error}");
    };
    assert_eq!(wire.kind, ErrorKind::Timeout, "message: {}", wire.message);
    assert!(
        elapsed < Duration::from_millis(150),
        "timeout took {elapsed:?}, budget 50 ms + 100 ms slack"
    );

    // Concurrent duplicates: every one gets the same typed timeout, via
    // coalescing onto the leader or via its own (context-cached) search.
    const CLIENTS: usize = 5;
    let mut workers = Vec::new();
    for _ in 0..CLIENTS {
        let addr = daemon.addr.clone();
        let source = source.clone();
        let config = config.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            client.schedule(&source, Some(&config))
        }));
    }
    for worker in workers {
        let result = worker.join().expect("client thread");
        let error = result.expect_err("every duplicate must time out");
        let ClientError::Server(wire) = error else {
            panic!("expected a typed server error, got {error}");
        };
        assert_eq!(wire.kind, ErrorKind::Timeout);
    }

    // The worker slots are free: a normal request is served immediately.
    let started = Instant::now();
    let reply = client.schedule(ECHO_SOURCE, None).expect("clean schedule");
    assert!(!reply.fingerprint.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the timed-out searches did not free their workers"
    );

    let stats = client.stats().expect("stats");
    assert!(
        stats.timeouts >= (CLIENTS + 1) as u64,
        "every budget expiry must be counted: {stats:?}"
    );
    assert!(
        stats.cancelled >= 1,
        "at least one leading search was cancelled mid-flight: {stats:?}"
    );
    assert!(
        stats.cache.hits + stats.coalesced >= CLIENTS as u64 - 1,
        "duplicates must share the context or the in-flight search: {stats:?}"
    );
    shutdown_cleanly(daemon);
}

/// Scenario 12: a pipelined connection is cut while responses are still
/// parked inside the server — out-of-order (v2) rounds park a slow
/// schedule's completion behind already-delivered checks, in-order (v1)
/// rounds hold the checks' finished responses hostage behind the slow
/// schedule — and the seeded cut lands at a random point in between.
/// Either way the daemon must discard the orphaned responses and serve
/// the next client as if nothing happened.
#[test]
fn cut_connection_with_parked_responses_is_cleaned_up() {
    // Two workers: the slow flights coalesce onto at most one search
    // slot at a time, so the closing clean check always finds the other.
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "32"]);
    let mut rng = Rng::for_scenario("cut_with_parked_responses");
    let slow = pathological_source(8, 8);
    for round in 0..4 {
        let version = if round % 2 == 0 { 2 } else { 1 };
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(400)))
            .expect("read timeout");
        // One slow schedule whose budget outlives this whole round, then
        // a burst of instant checks behind it on the same connection.
        let request = qss::remote::Request {
            version: Some(version),
            id: Some(100),
            kind: qss::remote::RequestKind::Schedule,
            source: Some(slow.clone()),
            config: Some(tight_budget_config(1200)),
            events: Vec::new(),
            include_task: false,
        };
        let mut batch = serde_json::to_string(&request.to_value()).expect("serialize");
        batch.push('\n');
        let checks = 1 + rng.below(3);
        for id in 0..checks {
            let check = qss::remote::Request {
                version: None,
                id: Some(101 + id),
                kind: qss::remote::RequestKind::Check,
                source: Some(ECHO_SOURCE.to_string()),
                config: None,
                events: Vec::new(),
                include_task: false,
            };
            batch.push_str(&serde_json::to_string(&check.to_value()).expect("serialize"));
            batch.push('\n');
        }
        stream.write_all(batch.as_bytes()).expect("write the batch");
        // On v2 the checks answer immediately (drain a random number of
        // them); on v1 they are held behind the parked schedule, so every
        // read just runs out the clock. Then cut with everything still
        // in flight.
        let drain = rng.below(checks + 1);
        let mut reader = BufReader::new(&mut stream);
        for _ in 0..drain {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => {
                    let (id, result) = parse_response(line.trim()).expect("typed response");
                    if version == 2 {
                        assert!(
                            matches!(id, Some(i) if i >= 101),
                            "v2 checks must overtake the parked schedule, got {id:?}"
                        );
                        assert!(result.is_ok(), "check failed: {result:?}");
                    } else {
                        panic!("v1 must hold responses behind the schedule, got {id:?}");
                    }
                }
                // v1 rounds (or an unlucky v2 race) time out — fine.
                _ => break,
            }
        }
        thread::sleep(Duration::from_millis(rng.below(200)));
        drop(reader);
        drop(stream); // the parked schedule response now has no home
    }
    // The orphaned completions are discarded, not delivered, not leaked:
    // the daemon still schedules and drains cleanly.
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}

/// Scenario 11: a request dribbling through the proxy is cut mid-line —
/// the server sees a partial line plus EOF and moves on.
#[test]
fn proxied_cut_mid_request_is_survived() {
    let daemon = Daemon::spawn(&[]);
    let mut rng = Rng::for_scenario("proxied_cut");
    for _ in 0..3 {
        let line = schedule_request_line(ECHO_SOURCE, None);
        let cut = 8 + rng.below(line.len() as u64 / 2) as usize;
        let proxy = ChaosProxy::spawn(daemon.addr.clone(), Fault::CutAfter { bytes: cut });
        let mut stream = TcpStream::connect(&proxy.addr).expect("connect via proxy");
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("newline");
        // The proxy severs after `cut` bytes; our side just observes the
        // close (or nothing).
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("read timeout");
        let mut sink = [0u8; 64];
        let _ = stream.read(&mut sink);
    }
    assert_clean_schedule(&daemon.addr);
    shutdown_cleanly(daemon);
}
