//! Protocol-layer robustness: malformed JSON lines, oversized requests,
//! unknown request kinds and plain hostile bytes must all produce typed
//! error responses while the connection — and the server — stay alive.
//! A mini-fuzz in the spirit of `tests/parser_fuzz.rs` closes the suite.

use qss::remote::{Client, ClientError, ErrorKind, Request, RequestKind};
use qss_server::{Server, ServerConfig};

const ECHO: &str = r#"
PROCESS echo (In DPORT a, Out DPORT b) {
    int x;
    while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x * 2, 1); }
}
"#;

fn small_server() -> qss_server::ServerHandle {
    Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        max_line_bytes: 4096,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
    .spawn()
}

/// Sends a raw line, asserts the response is an error of `kind`, and
/// proves the same connection still serves a well-formed request.
fn expect_error_then_recover(client: &mut Client, line: &str, kind: ErrorKind) {
    let response = client.raw_line(line).expect("server must answer");
    let (_, result) = qss::remote::parse_response(&response).expect("response must be JSON");
    let error = result.expect_err("malformed input must fail");
    assert_eq!(error.kind, kind, "for line {line:?}");
    let summary = client.check(ECHO).expect("connection must stay usable");
    assert_eq!(summary.system, "echo_system");
    assert_eq!(summary.processes, 1);
}

#[test]
fn malformed_lines_return_typed_errors_and_keep_the_connection() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    expect_error_then_recover(&mut client, "not json at all", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "{\"kind\": \"check\"", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "[1, 2, 3]", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "{}", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "\"just a string\"", ErrorKind::Protocol);
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"schedule\"}", // missing source
        ErrorKind::Protocol,
    );
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"explode\", \"source\": \"x\"}",
        ErrorKind::UnknownKind,
    );
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"check\", \"source\": \"x\", \"surprise\": true}",
        ErrorKind::Protocol,
    );
    server.shutdown_and_join().unwrap();
}

#[test]
fn oversized_requests_are_rejected_without_dropping_the_connection() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Far beyond the 4096-byte line limit of `small_server`.
    let huge = format!(
        "{{\"kind\": \"check\", \"source\": \"{}\"}}",
        "x".repeat(64 * 1024)
    );
    expect_error_then_recover(&mut client, &huge, ErrorKind::TooLarge);
    // Twice in a row — the drain must resync on the line boundary.
    expect_error_then_recover(&mut client, &huge, ErrorKind::TooLarge);
    server.shutdown_and_join().unwrap();
}

#[test]
fn pipeline_failures_carry_their_stage_as_the_error_kind() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.check("PROCESS broken (In DPORT a { }").unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.kind, ErrorKind::Parse);
            assert!(e.message.contains("parse stage"), "message: {}", e.message);
        }
        other => panic!("expected a server error, got {other}"),
    }
    // An invalid embedded config is a `config` error.
    let response = client
        .raw_line("{\"kind\": \"schedule\", \"source\": \"x\", \"config\": {\"profile\": 42}}")
        .unwrap();
    let (_, result) = qss::remote::parse_response(&response).unwrap();
    assert_eq!(result.unwrap_err().kind, ErrorKind::Config);
    // The server survives all of it.
    assert!(client.check(ECHO).is_ok());
    server.shutdown_and_join().unwrap();
}

#[test]
fn blank_lines_are_ignored_and_ids_are_echoed() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // A blank line produces no response; the next real request answers
    // with its own id — if the server had answered the blank line, this
    // response's id would not match.
    let response = client
        .raw_line("\n{\"id\": 42, \"kind\": \"check\", \"source\": \"PROCESS p () { int x; }\"}")
        .unwrap();
    let (id, _) = qss::remote::parse_response(&response).unwrap();
    assert_eq!(id, Some(42));
    server.shutdown_and_join().unwrap();
}

#[test]
fn mini_fuzz_mutated_requests_never_kill_the_server() {
    let server = small_server();
    let valid = format!(
        "{{\"id\": 1, \"kind\": \"check\", \"source\": {}}}",
        serde_json::to_string(&ECHO.to_string()).unwrap()
    );
    // Deterministic mutation battery: truncations, byte substitutions,
    // insertions and duplications of a valid request line.
    // (Blank lines are skipped: by design they elicit no response, so a
    // lock-step send-then-read driver would wait forever on them.)
    let mut lines: Vec<String> = Vec::new();
    for i in (1..valid.len()).step_by(7) {
        lines.push(valid[..i].to_string());
    }
    let substitutes = ["\"", "{", "}", "\\", "\0", "9", ",", "ß"];
    for (n, i) in (0..valid.len()).step_by(5).enumerate() {
        let mut mutated = valid.clone();
        let replacement = substitutes[n % substitutes.len()];
        // Only splice on a char boundary; skip otherwise.
        if mutated.is_char_boundary(i) && mutated.is_char_boundary(i + 1) {
            mutated.replace_range(i..i + 1, replacement);
            lines.push(mutated);
        }
    }
    for i in (0..valid.len()).step_by(11) {
        let mut mutated = valid.clone();
        if mutated.is_char_boundary(i) {
            mutated.insert_str(i, "{\"junk\":");
            lines.push(mutated);
        }
    }
    lines.push(valid.repeat(2)); // two requests glued without newline
    lines.push("\u{7f}\u{1b}[2J".to_string()); // terminal junk

    let mut client = Client::connect(server.addr()).unwrap();
    for line in &lines {
        // Every mutated line must produce exactly one parseable response
        // (ok or a typed error) on a still-healthy connection.
        let response = client
            .raw_line(line)
            .unwrap_or_else(|e| panic!("no response for {line:?}: {e}"));
        let _ = qss::remote::parse_response(&response)
            .unwrap_or_else(|e| panic!("unparseable response for {line:?}: {e}"));
    }
    // And the server still does real work afterwards.
    let summary = client.check(ECHO).expect("server survived the fuzz");
    assert_eq!(summary.system, "echo_system");
    let stats = client.stats().unwrap();
    assert!(stats.requests as usize >= lines.len());
    server.shutdown_and_join().unwrap();
}

/// A divider chain whose full search fires the source `k^depth` times —
/// with a millisecond budget it becomes a slow, self-cancelling request
/// (the e2e and chaos suites share this shape).
fn pathological_source(depth: usize, k: u32) -> String {
    let mut out = String::from("SYSTEM chain {\n");
    for i in 0..depth {
        out.push_str(&format!("    CHANNEL s{i}.out -> s{}.inp;\n", i + 1));
    }
    out.push_str("}\n");
    out.push_str(
        "PROCESS s0 (In DPORT go, Out DPORT out) {\n\
         \x20   int x;\n\
         \x20   while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }\n\
         }\n",
    );
    for i in 1..=depth {
        out.push_str(&format!(
            "PROCESS s{i} (In DPORT inp, Out DPORT out) {{\n\
             \x20   int x;\n\
             \x20   while (1) {{ READ_DATA(inp, x, {k}); WRITE_DATA(out, x, 1); }}\n\
             }}\n"
        ));
    }
    out
}

/// A schedule request that holds its search slot for `deadline_ms`
/// before timing out — the "slow" half of every ordering test.
fn slow_schedule(deadline_ms: u64) -> Request {
    let mut config = qss::PipelineConfig::default();
    config.schedule.max_nodes = 500_000_000;
    config.budget.deadline_ms = Some(deadline_ms);
    Request {
        version: None,
        id: None,
        kind: RequestKind::Schedule,
        source: Some(pathological_source(8, 8)),
        config: Some(config),
        events: Vec::new(),
        include_task: false,
    }
}

fn check_request(source: &str) -> Request {
    Request {
        version: None,
        id: None,
        kind: RequestKind::Check,
        source: Some(source.to_string()),
        config: None,
        events: Vec::new(),
        include_task: false,
    }
}

#[test]
fn v2_pipelined_responses_arrive_out_of_order_matched_by_id() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // One connection, four requests on the wire at once: a schedule that
    // burns its whole 600 ms budget, then three instant checks. `send`
    // speaks version 2, so the checks must not queue behind the slow
    // search — head-of-line blocking was exactly the old bug.
    let slow_id = client.send(&slow_schedule(600)).expect("send schedule");
    let check_ids: Vec<u64> = (0..3)
        .map(|_| client.send(&check_request(ECHO)).expect("send check"))
        .collect();

    let mut arrival = Vec::new();
    for _ in 0..4 {
        let (id, result) = client.recv().expect("pipelined response");
        if id == slow_id {
            let error = result.expect_err("the saturating search must time out");
            assert_eq!(error.kind, ErrorKind::Timeout);
        } else {
            assert!(check_ids.contains(&id), "unexpected response id {id}");
            let summary = result.expect("check must succeed");
            assert_eq!(
                summary.get("system").and_then(serde_json::Value::as_str),
                Some("echo_system")
            );
        }
        arrival.push(id);
    }
    assert_eq!(
        arrival.last(),
        Some(&slow_id),
        "every fast check must overtake the slow schedule: {arrival:?}"
    );
    server.shutdown_and_join().unwrap();
}

#[test]
fn v1_connections_keep_strict_request_order_even_when_it_blocks() {
    use std::io::{BufRead, BufReader, Write};

    let server = small_server();
    // Raw v1 pipelining: no `version` field, so the server must hold the
    // fast checks' responses until the slow schedule ahead of them has
    // answered — order over latency is the v1 contract.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut batch = String::new();
    let mut slow = slow_schedule(400);
    slow.id = Some(100);
    batch.push_str(&serde_json::to_string(&slow.to_value()).unwrap());
    batch.push('\n');
    for id in 101..=103u64 {
        let mut check = check_request(ECHO);
        check.id = Some(id);
        batch.push_str(&serde_json::to_string(&check.to_value()).unwrap());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut arrival = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (id, _) = qss::remote::parse_response(&line).expect("v1 response");
        arrival.push(id.expect("ids are echoed"));
    }
    assert_eq!(
        arrival,
        vec![100, 101, 102, 103],
        "v1 must deliver responses in request order"
    );
    drop(reader);
    drop(stream);
    server.shutdown_and_join().unwrap();
}

#[test]
fn shutdown_rejects_new_work_while_draining() {
    let server = small_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    // On the still-open connection, new pipeline work is refused with a
    // typed shutting_down error (or the socket is already severed —
    // both are graceful).
    match client.check(ECHO) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
        Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("pipeline work accepted after shutdown"),
        Err(other) => panic!("unexpected error {other}"),
    }
    server.join().unwrap();
}
