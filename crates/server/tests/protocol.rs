//! Protocol-layer robustness: malformed JSON lines, oversized requests,
//! unknown request kinds and plain hostile bytes must all produce typed
//! error responses while the connection — and the server — stay alive.
//! A mini-fuzz in the spirit of `tests/parser_fuzz.rs` closes the suite.

use qss::remote::{Client, ClientError, ErrorKind};
use qss_server::{Server, ServerConfig};

const ECHO: &str = r#"
PROCESS echo (In DPORT a, Out DPORT b) {
    int x;
    while (1) { READ_DATA(a, x, 1); WRITE_DATA(b, x * 2, 1); }
}
"#;

fn small_server() -> qss_server::ServerHandle {
    Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        max_line_bytes: 4096,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
    .spawn()
}

/// Sends a raw line, asserts the response is an error of `kind`, and
/// proves the same connection still serves a well-formed request.
fn expect_error_then_recover(client: &mut Client, line: &str, kind: ErrorKind) {
    let response = client.raw_line(line).expect("server must answer");
    let (_, result) = qss::remote::parse_response(&response).expect("response must be JSON");
    let error = result.expect_err("malformed input must fail");
    assert_eq!(error.kind, kind, "for line {line:?}");
    let summary = client.check(ECHO).expect("connection must stay usable");
    assert_eq!(summary.system, "echo_system");
    assert_eq!(summary.processes, 1);
}

#[test]
fn malformed_lines_return_typed_errors_and_keep_the_connection() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    expect_error_then_recover(&mut client, "not json at all", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "{\"kind\": \"check\"", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "[1, 2, 3]", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "{}", ErrorKind::Protocol);
    expect_error_then_recover(&mut client, "\"just a string\"", ErrorKind::Protocol);
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"schedule\"}", // missing source
        ErrorKind::Protocol,
    );
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"explode\", \"source\": \"x\"}",
        ErrorKind::UnknownKind,
    );
    expect_error_then_recover(
        &mut client,
        "{\"kind\": \"check\", \"source\": \"x\", \"surprise\": true}",
        ErrorKind::Protocol,
    );
    server.shutdown_and_join().unwrap();
}

#[test]
fn oversized_requests_are_rejected_without_dropping_the_connection() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Far beyond the 4096-byte line limit of `small_server`.
    let huge = format!(
        "{{\"kind\": \"check\", \"source\": \"{}\"}}",
        "x".repeat(64 * 1024)
    );
    expect_error_then_recover(&mut client, &huge, ErrorKind::TooLarge);
    // Twice in a row — the drain must resync on the line boundary.
    expect_error_then_recover(&mut client, &huge, ErrorKind::TooLarge);
    server.shutdown_and_join().unwrap();
}

#[test]
fn pipeline_failures_carry_their_stage_as_the_error_kind() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.check("PROCESS broken (In DPORT a { }").unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.kind, ErrorKind::Parse);
            assert!(e.message.contains("parse stage"), "message: {}", e.message);
        }
        other => panic!("expected a server error, got {other}"),
    }
    // An invalid embedded config is a `config` error.
    let response = client
        .raw_line("{\"kind\": \"schedule\", \"source\": \"x\", \"config\": {\"profile\": 42}}")
        .unwrap();
    let (_, result) = qss::remote::parse_response(&response).unwrap();
    assert_eq!(result.unwrap_err().kind, ErrorKind::Config);
    // The server survives all of it.
    assert!(client.check(ECHO).is_ok());
    server.shutdown_and_join().unwrap();
}

#[test]
fn blank_lines_are_ignored_and_ids_are_echoed() {
    let server = small_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // A blank line produces no response; the next real request answers
    // with its own id — if the server had answered the blank line, this
    // response's id would not match.
    let response = client
        .raw_line("\n{\"id\": 42, \"kind\": \"check\", \"source\": \"PROCESS p () { int x; }\"}")
        .unwrap();
    let (id, _) = qss::remote::parse_response(&response).unwrap();
    assert_eq!(id, Some(42));
    server.shutdown_and_join().unwrap();
}

#[test]
fn mini_fuzz_mutated_requests_never_kill_the_server() {
    let server = small_server();
    let valid = format!(
        "{{\"id\": 1, \"kind\": \"check\", \"source\": {}}}",
        serde_json::to_string(&ECHO.to_string()).unwrap()
    );
    // Deterministic mutation battery: truncations, byte substitutions,
    // insertions and duplications of a valid request line.
    // (Blank lines are skipped: by design they elicit no response, so a
    // lock-step send-then-read driver would wait forever on them.)
    let mut lines: Vec<String> = Vec::new();
    for i in (1..valid.len()).step_by(7) {
        lines.push(valid[..i].to_string());
    }
    let substitutes = ["\"", "{", "}", "\\", "\0", "9", ",", "ß"];
    for (n, i) in (0..valid.len()).step_by(5).enumerate() {
        let mut mutated = valid.clone();
        let replacement = substitutes[n % substitutes.len()];
        // Only splice on a char boundary; skip otherwise.
        if mutated.is_char_boundary(i) && mutated.is_char_boundary(i + 1) {
            mutated.replace_range(i..i + 1, replacement);
            lines.push(mutated);
        }
    }
    for i in (0..valid.len()).step_by(11) {
        let mut mutated = valid.clone();
        if mutated.is_char_boundary(i) {
            mutated.insert_str(i, "{\"junk\":");
            lines.push(mutated);
        }
    }
    lines.push(valid.repeat(2)); // two requests glued without newline
    lines.push("\u{7f}\u{1b}[2J".to_string()); // terminal junk

    let mut client = Client::connect(server.addr()).unwrap();
    for line in &lines {
        // Every mutated line must produce exactly one parseable response
        // (ok or a typed error) on a still-healthy connection.
        let response = client
            .raw_line(line)
            .unwrap_or_else(|e| panic!("no response for {line:?}: {e}"));
        let _ = qss::remote::parse_response(&response)
            .unwrap_or_else(|e| panic!("unparseable response for {line:?}: {e}"));
    }
    // And the server still does real work afterwards.
    let summary = client.check(ECHO).expect("server survived the fuzz");
    assert_eq!(summary.system, "echo_system");
    let stats = client.stats().unwrap();
    assert!(stats.requests as usize >= lines.len());
    server.shutdown_and_join().unwrap();
}

#[test]
fn shutdown_rejects_new_work_while_draining() {
    let server = small_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    // On the still-open connection, new pipeline work is refused with a
    // typed shutting_down error (or the socket is already severed —
    // both are graceful).
    match client.check(ECHO) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
        Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("pipeline work accepted after shutdown"),
        Err(other) => panic!("unexpected error {other}"),
    }
    server.join().unwrap();
}
