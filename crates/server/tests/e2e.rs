//! End-to-end determinism of the service: spawn the real `qssd` binary
//! on an ephemeral port, storm it with concurrent clients over several
//! distinct nets (some duplicated, to exercise the context cache and the
//! in-flight coalescing), and require every returned artifact to be
//! **byte-identical** to the corresponding local [`qss::Pipeline`] run.
//! Ends with a graceful `shutdown`, so the harness leaks no listeners.

use qss::remote::Client;
use qss::{EnvEvent, Pipeline};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

/// A spawned `qssd` process plus its discovered address.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qssd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qssd");
        let stdout = child.stdout.take().expect("qssd stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the discovery line");
        // "qssd: listening on 127.0.0.1:PORT"
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("discovery line carries the address")
            .to_string();
        Daemon { child, addr }
    }

    /// Requires the daemon to exit cleanly within a few seconds.
    fn assert_clean_exit(mut self) {
        for _ in 0..400 {
            if let Some(status) = self.child.try_wait().expect("poll qssd") {
                assert!(status.success(), "qssd exited with {status}");
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let _ = self.child.kill();
        panic!("qssd did not exit within 10s of the shutdown request");
    }
}

/// K structurally distinct single-process nets (the multiplier lands in
/// transition code, so each variant has its own fingerprint).
fn net_source(multiplier: u32) -> String {
    format!(
        "PROCESS echo (In DPORT a, Out DPORT b) {{\n\
         \x20   int x;\n\
         \x20   while (1) {{ READ_DATA(a, x, 1); WRITE_DATA(b, x * {multiplier}, 1); }}\n\
         }}\n"
    )
}

/// The local (in-process, default-config) ground truth for one source.
struct Expected {
    schedule_json: String,
    task_json: String,
    sim_json: String,
}

fn expected_for(source: &str, events: &[EnvEvent]) -> Expected {
    let scheduled = Pipeline::from_source(source)
        .expect("source parses")
        .link()
        .expect("source links")
        .schedule()
        .expect("source schedules");
    let schedule_json = scheduled.to_json();
    let task = scheduled.generate().expect("source generates");
    let task_json = task.to_json();
    let sim_json = task.simulate(events).expect("source simulates").to_json();
    Expected {
        schedule_json,
        task_json,
        sim_json,
    }
}

#[test]
fn concurrent_clients_get_byte_identical_artifacts_and_a_warm_cache() {
    const DISTINCT_NETS: u32 = 3;
    const CLIENTS: usize = 8;

    let daemon = Daemon::spawn(&["--workers", "4", "--queue", "64", "--cache", "16"]);
    let addr = daemon.addr.clone();

    let events: Vec<EnvEvent> = (1..=3).map(|v| EnvEvent::new("echo", "a", v)).collect();
    let sources: Vec<String> = (0..DISTINCT_NETS).map(|i| net_source(2 + i)).collect();
    let expected: Vec<Expected> = sources.iter().map(|s| expected_for(s, &events)).collect();

    // The storm: every client walks all nets, duplicating the work of
    // its siblings — exactly the traffic shape the cache and the
    // coalescer exist for. Each thread compares bytes on the spot.
    let mut workers = Vec::new();
    for client_index in 0..CLIENTS {
        let addr = addr.clone();
        let sources = sources.clone();
        let events = events.clone();
        let expected_schedules: Vec<String> =
            expected.iter().map(|e| e.schedule_json.clone()).collect();
        let expected_tasks: Vec<String> = expected.iter().map(|e| e.task_json.clone()).collect();
        let expected_sims: Vec<String> = expected.iter().map(|e| e.sim_json.clone()).collect();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            let mut fingerprints: HashMap<usize, String> = HashMap::new();
            for step in 0..sources.len() {
                let net = (client_index + step) % sources.len();
                let source = &sources[net];
                let reply = loop {
                    match client.schedule(source, None) {
                        Ok(reply) => break reply,
                        // Backpressure is a legal answer under load.
                        Err(qss::remote::ClientError::Server(e))
                            if e.kind == qss::remote::ErrorKind::Busy =>
                        {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(other) => panic!("schedule failed: {other}"),
                    }
                };
                assert_eq!(
                    reply.artifact_json(),
                    expected_schedules[net],
                    "schedule artifact for net {net} drifted from the local pipeline"
                );
                fingerprints.insert(net, reply.fingerprint.clone());

                let reply = client.generate(source, None).expect("generate");
                assert_eq!(reply.artifact_json(), expected_tasks[net]);
                assert_eq!(reply.fingerprint, fingerprints[&net]);

                let reply = client.simulate(source, None, &events).expect("simulate");
                assert_eq!(reply.artifact_json(), expected_sims[net]);
            }
            fingerprints
        }));
    }
    let mut all_fingerprints: Vec<HashMap<usize, String>> = Vec::new();
    for worker in workers {
        all_fingerprints.push(worker.join().expect("client thread"));
    }
    // Same net => same fingerprint across every client; distinct nets
    // => distinct fingerprints.
    let reference = &all_fingerprints[0];
    assert_eq!(reference.len(), DISTINCT_NETS as usize);
    for fingerprints in &all_fingerprints {
        assert_eq!(fingerprints, reference);
    }
    let mut unique: Vec<&String> = reference.values().collect();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), DISTINCT_NETS as usize);

    // Warm pass: nothing is in flight anymore, so every net must now be
    // answered straight from the context cache.
    let mut client = Client::connect(&*addr).expect("connect");
    for source in &sources {
        let reply = client.schedule(source, None).expect("warm schedule");
        assert!(
            reply.cached,
            "post-storm request must hit the context cache"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.cache.hits > 0,
        "duplicated nets must produce cache hits: {stats:?}"
    );
    assert!(
        stats.cache.misses >= u64::from(DISTINCT_NETS),
        "each distinct net misses at least once: {stats:?}"
    );
    assert_eq!(stats.cache.collisions, 0);
    assert!(stats.requests >= (CLIENTS * 3 * DISTINCT_NETS as usize) as u64);

    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn scheduling_requests_coalesce_onto_one_in_flight_search() {
    // One worker guarantees queued duplicates arrive while the first
    // search is still running whenever they queue together; with the
    // heavier divider-style net below the leader search is slow enough
    // for followers from other connections to attach. Coalescing is
    // opportunistic, so the hard assertion is correctness; the counter
    // check tolerates zero only if the runs never overlapped — which the
    // barrier-free storm plus queue ordering makes effectively
    // impossible with 12 duplicates of one key.
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "64", "--cache", "4"]);
    let addr = daemon.addr.clone();
    let source = net_source(7);
    let expected = expected_for(&source, &[]);

    let mut workers = Vec::new();
    for _ in 0..12 {
        let addr = addr.clone();
        let source = source.clone();
        let expected = expected.schedule_json.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            let reply = client.schedule(&source, None).expect("schedule");
            assert_eq!(reply.artifact_json(), expected);
        }));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }
    let mut client = Client::connect(&*addr).expect("connect");
    let stats = client.stats().expect("stats");
    // Every non-leading duplicate either overlapped the leader (it
    // joined the in-flight search: `coalesced`) or arrived later (the
    // leader had already published the context: a cache hit) — the two
    // counters must cover all eleven.
    assert!(
        stats.coalesced + stats.cache.hits >= 11,
        "12 duplicates must share the context or the search: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn analyze_is_byte_identical_to_local_and_report_cached_by_fingerprint() {
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "16", "--cache", "8"]);
    let source = net_source(3);
    let local = Pipeline::from_source(&source)
        .expect("source parses")
        .link()
        .expect("source links")
        .analyze()
        .to_json();

    let mut client = Client::connect(&*daemon.addr).expect("connect");
    let cold = client.analyze(&source).expect("cold analyze");
    assert!(!cold.cached, "first analyze must miss the report cache");
    assert_eq!(
        cold.artifact_json(),
        local,
        "remote analysis differs from the local run"
    );
    let warm = client.analyze(&source).expect("warm analyze");
    assert!(warm.cached, "second analyze must hit the report cache");
    assert_eq!(
        warm.artifact_json(),
        local,
        "cached analysis differs from the cold one"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn busy_rejections_are_ridden_out_by_the_deterministic_retry_policy() {
    use qss::remote::{with_retry, RetryPolicy};

    // One worker, a one-slot queue: two slow searches saturate the
    // server completely, so a third request *must* see `busy`.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "1"]);
    let addr = daemon.addr.clone();

    // A divider chain whose full search runs for ~k^depth source
    // firings; an 800 ms budget turns each into a slow, self-cancelling
    // occupant of the worker (and of the queue slot behind it). The two
    // deadlines differ so the requests do not coalesce.
    let slow_source = pathological_source(8, 8);
    let mut saturators = Vec::new();
    for deadline_ms in [800u64, 801] {
        let addr = addr.clone();
        let source = slow_source.clone();
        saturators.push(thread::spawn(move || {
            let mut config = qss::PipelineConfig::default();
            config.schedule.max_nodes = 500_000_000;
            config.budget.deadline_ms = Some(deadline_ms);
            let mut client = Client::connect(&*addr).expect("connect");
            // The request itself times out — that is the point: it holds
            // the worker for its whole budget first. (The two saturators
            // race each other into the one-slot queue, so one may bounce
            // off `busy` before it gets in.)
            loop {
                let error = client
                    .schedule(&source, Some(&config))
                    .expect_err("the saturating search must exhaust its budget");
                match error {
                    qss::remote::ClientError::Server(e)
                        if e.kind == qss::remote::ErrorKind::Busy =>
                    {
                        thread::sleep(Duration::from_millis(10));
                    }
                    qss::remote::ClientError::Server(e) => {
                        assert_eq!(e.kind, qss::remote::ErrorKind::Timeout);
                        break;
                    }
                    other => panic!("saturator failed oddly: {other}"),
                }
            }
        }));
    }
    // Let both saturators reach the server before the retrying client.
    thread::sleep(Duration::from_millis(150));

    // The backoff schedule is a pure function of the seed: two policies
    // with the same seed must plan identical sleeps...
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(400),
        seed: 42,
        overall_deadline: Some(Duration::from_secs(20)),
    };
    let replay: Vec<_> = {
        let mut a = policy.backoff();
        let mut b = policy.backoff();
        let mut delays = Vec::new();
        while let (Some(x), Some(y)) = (a.next_delay(), b.next_delay()) {
            assert_eq!(x, y, "same seed, same schedule");
            delays.push(x);
        }
        delays
    };
    assert_eq!(replay.len(), policy.max_attempts as usize - 1);

    // ...and riding that schedule through the saturated window must end
    // in success, after at least one observed `busy`.
    let mut attempts = 0u32;
    let reply = with_retry(&*addr, &policy, |client| {
        attempts += 1;
        client.schedule(&net_source(5), None)
    })
    .expect("the retry policy must outlast the backpressure window");
    assert!(!reply.fingerprint.is_empty());
    assert!(
        attempts > 1,
        "the saturated server should have answered `busy` at least once"
    );

    for saturator in saturators {
        saturator.join().expect("saturator thread");
    }
    let mut client = Client::connect(&*addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.busy_rejections >= 1,
        "the full queue must have rejected at least one request: {stats:?}"
    );
    assert!(
        stats.timeouts >= 2,
        "both saturating searches must have timed out: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

/// A divider chain: stage `i` consumes `k` items per firing, so the
/// environment input must fire `k^depth` times per schedule — a search
/// that outlives any sane deadline (the chaos suite shares this shape).
fn pathological_source(depth: usize, k: u32) -> String {
    let mut out = String::from("SYSTEM chain {\n");
    for i in 0..depth {
        out.push_str(&format!("    CHANNEL s{i}.out -> s{}.inp;\n", i + 1));
    }
    out.push_str("}\n");
    out.push_str(
        "PROCESS s0 (In DPORT go, Out DPORT out) {\n\
         \x20   int x;\n\
         \x20   while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }\n\
         }\n",
    );
    for i in 1..=depth {
        out.push_str(&format!(
            "PROCESS s{i} (In DPORT inp, Out DPORT out) {{\n\
             \x20   int x;\n\
             \x20   while (1) {{ READ_DATA(inp, x, {k}); WRITE_DATA(out, x, 1); }}\n\
             }}\n"
        ));
    }
    out
}

#[test]
fn qssd_rejects_bad_flags_with_usage_exit_code() {
    let output = Command::new(env!("CARGO_BIN_EXE_qssd"))
        .args(["--frobnicate"])
        .output()
        .expect("run qssd");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown option"), "stderr: {stderr}");
}
