//! End-to-end determinism of the service: spawn the real `qssd` binary
//! on an ephemeral port, storm it with concurrent clients over several
//! distinct nets (some duplicated, to exercise the context cache and the
//! in-flight coalescing), and require every returned artifact to be
//! **byte-identical** to the corresponding local [`qss::Pipeline`] run.
//! Ends with a graceful `shutdown`, so the harness leaks no listeners.

use qss::remote::Client;
use qss::{EnvEvent, Pipeline};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

/// A spawned `qssd` process plus its discovered address.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qssd"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn qssd");
        let stdout = child.stdout.take().expect("qssd stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the discovery line");
        // "qssd: listening on 127.0.0.1:PORT"
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("discovery line carries the address")
            .to_string();
        Daemon { child, addr }
    }

    /// Requires the daemon to exit cleanly within a few seconds.
    fn assert_clean_exit(mut self) {
        for _ in 0..400 {
            if let Some(status) = self.child.try_wait().expect("poll qssd") {
                assert!(status.success(), "qssd exited with {status}");
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let _ = self.child.kill();
        panic!("qssd did not exit within 10s of the shutdown request");
    }
}

/// K structurally distinct single-process nets (the multiplier lands in
/// transition code, so each variant has its own fingerprint).
fn net_source(multiplier: u32) -> String {
    format!(
        "PROCESS echo (In DPORT a, Out DPORT b) {{\n\
         \x20   int x;\n\
         \x20   while (1) {{ READ_DATA(a, x, 1); WRITE_DATA(b, x * {multiplier}, 1); }}\n\
         }}\n"
    )
}

/// The local (in-process, default-config) ground truth for one source.
struct Expected {
    schedule_json: String,
    task_json: String,
    sim_json: String,
}

fn expected_for(source: &str, events: &[EnvEvent]) -> Expected {
    let scheduled = Pipeline::from_source(source)
        .expect("source parses")
        .link()
        .expect("source links")
        .schedule()
        .expect("source schedules");
    let schedule_json = scheduled.to_json();
    let task = scheduled.generate().expect("source generates");
    let task_json = task.to_json();
    let sim_json = task.simulate(events).expect("source simulates").to_json();
    Expected {
        schedule_json,
        task_json,
        sim_json,
    }
}

#[test]
fn concurrent_clients_get_byte_identical_artifacts_and_a_warm_cache() {
    const DISTINCT_NETS: u32 = 3;
    const CLIENTS: usize = 8;

    let daemon = Daemon::spawn(&["--workers", "4", "--queue", "64", "--cache", "16"]);
    let addr = daemon.addr.clone();

    let events: Vec<EnvEvent> = (1..=3).map(|v| EnvEvent::new("echo", "a", v)).collect();
    let sources: Vec<String> = (0..DISTINCT_NETS).map(|i| net_source(2 + i)).collect();
    let expected: Vec<Expected> = sources.iter().map(|s| expected_for(s, &events)).collect();

    // The storm: every client walks all nets, duplicating the work of
    // its siblings — exactly the traffic shape the cache and the
    // coalescer exist for. Each thread compares bytes on the spot.
    let mut workers = Vec::new();
    for client_index in 0..CLIENTS {
        let addr = addr.clone();
        let sources = sources.clone();
        let events = events.clone();
        let expected_schedules: Vec<String> =
            expected.iter().map(|e| e.schedule_json.clone()).collect();
        let expected_tasks: Vec<String> = expected.iter().map(|e| e.task_json.clone()).collect();
        let expected_sims: Vec<String> = expected.iter().map(|e| e.sim_json.clone()).collect();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            let mut fingerprints: HashMap<usize, String> = HashMap::new();
            for step in 0..sources.len() {
                let net = (client_index + step) % sources.len();
                let source = &sources[net];
                let reply = loop {
                    match client.schedule(source, None) {
                        Ok(reply) => break reply,
                        // Backpressure is a legal answer under load.
                        Err(qss::remote::ClientError::Server(e))
                            if e.kind == qss::remote::ErrorKind::Busy =>
                        {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(other) => panic!("schedule failed: {other}"),
                    }
                };
                assert_eq!(
                    reply.artifact_json(),
                    expected_schedules[net],
                    "schedule artifact for net {net} drifted from the local pipeline"
                );
                fingerprints.insert(net, reply.fingerprint.clone());

                let reply = client.generate(source, None).expect("generate");
                assert_eq!(reply.artifact_json(), expected_tasks[net]);
                assert_eq!(reply.fingerprint, fingerprints[&net]);

                let reply = client.simulate(source, None, &events).expect("simulate");
                assert_eq!(reply.artifact_json(), expected_sims[net]);
            }
            fingerprints
        }));
    }
    let mut all_fingerprints: Vec<HashMap<usize, String>> = Vec::new();
    for worker in workers {
        all_fingerprints.push(worker.join().expect("client thread"));
    }
    // Same net => same fingerprint across every client; distinct nets
    // => distinct fingerprints.
    let reference = &all_fingerprints[0];
    assert_eq!(reference.len(), DISTINCT_NETS as usize);
    for fingerprints in &all_fingerprints {
        assert_eq!(fingerprints, reference);
    }
    let mut unique: Vec<&String> = reference.values().collect();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), DISTINCT_NETS as usize);

    // Warm pass: nothing is in flight anymore, so every net must now be
    // answered straight from the context cache.
    let mut client = Client::connect(&*addr).expect("connect");
    for source in &sources {
        let reply = client.schedule(source, None).expect("warm schedule");
        assert!(
            reply.cached,
            "post-storm request must hit the context cache"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.cache.hits > 0,
        "duplicated nets must produce cache hits: {stats:?}"
    );
    assert!(
        stats.cache.misses >= u64::from(DISTINCT_NETS),
        "each distinct net misses at least once: {stats:?}"
    );
    assert_eq!(stats.cache.collisions, 0);
    assert!(stats.requests >= (CLIENTS * 3 * DISTINCT_NETS as usize) as u64);

    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn scheduling_requests_coalesce_onto_one_in_flight_search() {
    // One worker guarantees queued duplicates arrive while the first
    // search is still running whenever they queue together; with the
    // heavier divider-style net below the leader search is slow enough
    // for followers from other connections to attach. Coalescing is
    // opportunistic, so the hard assertion is correctness; the counter
    // check tolerates zero only if the runs never overlapped — which the
    // barrier-free storm plus queue ordering makes effectively
    // impossible with 12 duplicates of one key.
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "64", "--cache", "4"]);
    let addr = daemon.addr.clone();
    let source = net_source(7);
    let expected = expected_for(&source, &[]);

    let mut workers = Vec::new();
    for _ in 0..12 {
        let addr = addr.clone();
        let source = source.clone();
        let expected = expected.schedule_json.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            let reply = client.schedule(&source, None).expect("schedule");
            assert_eq!(reply.artifact_json(), expected);
        }));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }
    let mut client = Client::connect(&*addr).expect("connect");
    let stats = client.stats().expect("stats");
    // Every non-leading duplicate either overlapped the leader (it
    // joined the in-flight search: `coalesced`) or arrived later (the
    // leader had already published the context: a cache hit) — the two
    // counters must cover all eleven.
    assert!(
        stats.coalesced + stats.cache.hits >= 11,
        "12 duplicates must share the context or the search: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn analyze_is_byte_identical_to_local_and_report_cached_by_fingerprint() {
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "16", "--cache", "8"]);
    let source = net_source(3);
    let local = Pipeline::from_source(&source)
        .expect("source parses")
        .link()
        .expect("source links")
        .analyze()
        .to_json();

    let mut client = Client::connect(&*daemon.addr).expect("connect");
    let cold = client.analyze(&source).expect("cold analyze");
    assert!(!cold.cached, "first analyze must miss the report cache");
    assert_eq!(
        cold.artifact_json(),
        local,
        "remote analysis differs from the local run"
    );
    let warm = client.analyze(&source).expect("warm analyze");
    assert!(warm.cached, "second analyze must hit the report cache");
    assert_eq!(
        warm.artifact_json(),
        local,
        "cached analysis differs from the cold one"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

#[test]
fn busy_rejections_are_ridden_out_by_the_deterministic_retry_policy() {
    use qss::remote::{with_retry, RetryPolicy};

    // One worker, a one-slot queue: two slow searches saturate the
    // server completely, so a third request *must* see `busy`.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "1"]);
    let addr = daemon.addr.clone();

    // A divider chain whose full search runs for ~k^depth source
    // firings; an 800 ms budget turns each into a slow, self-cancelling
    // occupant of the worker (and of the queue slot behind it). The two
    // deadlines differ so the requests do not coalesce.
    let slow_source = pathological_source(8, 8);
    let mut saturators = Vec::new();
    for deadline_ms in [800u64, 801] {
        let addr = addr.clone();
        let source = slow_source.clone();
        saturators.push(thread::spawn(move || {
            let mut config = qss::PipelineConfig::default();
            config.schedule.max_nodes = 500_000_000;
            config.budget.deadline_ms = Some(deadline_ms);
            let mut client = Client::connect(&*addr).expect("connect");
            // The request itself times out — that is the point: it holds
            // the worker for its whole budget first. (The two saturators
            // race each other into the one-slot queue, so one may bounce
            // off `busy` before it gets in.)
            loop {
                let error = client
                    .schedule(&source, Some(&config))
                    .expect_err("the saturating search must exhaust its budget");
                match error {
                    qss::remote::ClientError::Server(e)
                        if e.kind == qss::remote::ErrorKind::Busy =>
                    {
                        thread::sleep(Duration::from_millis(10));
                    }
                    qss::remote::ClientError::Server(e) => {
                        assert_eq!(e.kind, qss::remote::ErrorKind::Timeout);
                        break;
                    }
                    other => panic!("saturator failed oddly: {other}"),
                }
            }
        }));
    }
    // Let both saturators reach the server before the retrying client.
    thread::sleep(Duration::from_millis(150));

    // The backoff schedule is a pure function of the seed: two policies
    // with the same seed must plan identical sleeps...
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(400),
        seed: 42,
        overall_deadline: Some(Duration::from_secs(20)),
    };
    let replay: Vec<_> = {
        let mut a = policy.backoff();
        let mut b = policy.backoff();
        let mut delays = Vec::new();
        while let (Some(x), Some(y)) = (a.next_delay(), b.next_delay()) {
            assert_eq!(x, y, "same seed, same schedule");
            delays.push(x);
        }
        delays
    };
    assert_eq!(replay.len(), policy.max_attempts as usize - 1);

    // ...and riding that schedule through the saturated window must end
    // in success, after at least one observed `busy`.
    let mut attempts = 0u32;
    let reply = with_retry(&*addr, &policy, |client| {
        attempts += 1;
        client.schedule(&net_source(5), None)
    })
    .expect("the retry policy must outlast the backpressure window");
    assert!(!reply.fingerprint.is_empty());
    assert!(
        attempts > 1,
        "the saturated server should have answered `busy` at least once"
    );

    for saturator in saturators {
        saturator.join().expect("saturator thread");
    }
    let mut client = Client::connect(&*addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.busy_rejections >= 1,
        "the full queue must have rejected at least one request: {stats:?}"
    );
    assert!(
        stats.timeouts >= 2,
        "both saturating searches must have timed out: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

/// A divider chain: stage `i` consumes `k` items per firing, so the
/// environment input must fire `k^depth` times per schedule — a search
/// that outlives any sane deadline (the chaos suite shares this shape).
fn pathological_source(depth: usize, k: u32) -> String {
    let mut out = String::from("SYSTEM chain {\n");
    for i in 0..depth {
        out.push_str(&format!("    CHANNEL s{i}.out -> s{}.inp;\n", i + 1));
    }
    out.push_str("}\n");
    out.push_str(
        "PROCESS s0 (In DPORT go, Out DPORT out) {\n\
         \x20   int x;\n\
         \x20   while (1) { READ_DATA(go, x, 1); WRITE_DATA(out, x, 1); }\n\
         }\n",
    );
    for i in 1..=depth {
        out.push_str(&format!(
            "PROCESS s{i} (In DPORT inp, Out DPORT out) {{\n\
             \x20   int x;\n\
             \x20   while (1) {{ READ_DATA(inp, x, {k}); WRITE_DATA(out, x, 1); }}\n\
             }}\n"
        ));
    }
    out
}

/// The acceptance test for the out-of-order connection core: on ONE
/// pipelined v2 connection, every fast `link` queued behind a slow,
/// budget-bound `schedule` completes before it — matched by id, with
/// artifacts byte-identical to local [`Pipeline`] runs.
#[test]
fn pipelined_links_overtake_a_slow_schedule_with_byte_identical_artifacts() {
    const FAST: usize = 4;

    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "64"]);
    let sources: Vec<String> = (0..FAST as u32).map(|i| net_source(2 + i)).collect();
    let expected: Vec<String> = sources
        .iter()
        .map(|s| {
            Pipeline::from_source(s)
                .expect("source parses")
                .link()
                .expect("source links")
                .to_json()
        })
        .collect();

    let mut client = Client::connect(&*daemon.addr).expect("connect");
    let mut slow_config = qss::PipelineConfig::default();
    slow_config.schedule.max_nodes = 500_000_000;
    slow_config.budget.deadline_ms = Some(900);
    let slow_id = client
        .send(&qss::remote::Request {
            version: None,
            id: None,
            kind: qss::remote::RequestKind::Schedule,
            source: Some(pathological_source(8, 8)),
            config: Some(slow_config),
            events: Vec::new(),
            include_task: false,
        })
        .expect("send the slow schedule");
    let mut link_ids = HashMap::new();
    for (net, source) in sources.iter().enumerate() {
        let id = client
            .send(&qss::remote::Request {
                version: None,
                id: None,
                kind: qss::remote::RequestKind::Link,
                source: Some(source.clone()),
                config: None,
                events: Vec::new(),
                include_task: false,
            })
            .expect("send a fast link");
        link_ids.insert(id, net);
    }

    let mut arrival = Vec::new();
    for _ in 0..=FAST {
        let (id, result) = client.recv().expect("pipelined response");
        if id == slow_id {
            let error = result.expect_err("the budget-bound schedule must time out");
            assert_eq!(error.kind, qss::remote::ErrorKind::Timeout);
        } else {
            let net = link_ids[&id];
            let result = result.expect("link must succeed");
            let artifact = result
                .get("artifact")
                .expect("link result carries the artifact");
            assert_eq!(
                serde_json::to_string(artifact).expect("serialize"),
                expected[net],
                "link artifact for net {net} drifted from the local pipeline"
            );
        }
        arrival.push(id);
    }
    assert_eq!(
        arrival.last(),
        Some(&slow_id),
        "every link must complete before the slow schedule: {arrival:?}"
    );
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

/// Coalesced followers must wait on the event loop, not on worker
/// threads: with ONE worker, eight followers parked behind a slow
/// leader, the daemon still answers pipeline work for a distinct net
/// promptly. A ninth follower joins through a raw socket whose config
/// JSON spells the same configuration with its keys in reverse order —
/// canonicalization must coalesce it onto the same flight.
#[test]
fn parked_followers_hold_no_worker_while_a_single_worker_serves_others() {
    use std::io::{BufRead, BufReader, Write};

    let daemon = Daemon::spawn(&["--workers", "1", "--queue", "64", "--cache", "4"]);
    let addr = daemon.addr.clone();
    let source = pathological_source(8, 8);
    let mut config = qss::PipelineConfig::default();
    config.schedule.max_nodes = 500_000_000;
    config.budget.deadline_ms = Some(1500);

    let started = std::time::Instant::now();
    let mut followers = Vec::new();
    for _ in 0..9 {
        let addr = addr.clone();
        let source = source.clone();
        let config = config.clone();
        followers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            let error = client
                .schedule(&source, Some(&config))
                .expect_err("the coalesced search must exhaust its budget");
            match error {
                qss::remote::ClientError::Server(e) => {
                    assert_eq!(
                        e.kind,
                        qss::remote::ErrorKind::Timeout,
                        "a parked follower must share the leader's timeout, \
                         not bounce off `busy`: {e:?}"
                    );
                }
                other => panic!("follower failed oddly: {other}"),
            }
        }));
    }
    // The tenth duplicate arrives as raw bytes with the identical config
    // spelled in reverse key order — the server's canonical re-encoding
    // must still coalesce it.
    let reversed_config = {
        let canonical = serde_json::to_string(&config).expect("serialize config");
        let serde_json::Value::Object(mut pairs) =
            serde_json::from_str::<serde_json::Value>(&canonical).expect("reparse config")
        else {
            panic!("config serializes as an object");
        };
        pairs.reverse();
        serde_json::to_string(&serde_json::Value::Object(pairs)).expect("serialize")
    };
    let raw_follower = {
        let addr = addr.clone();
        let line = format!(
            "{{\"kind\": \"schedule\", \"source\": {}, \"config\": {}}}\n",
            serde_json::to_string(&source).expect("serialize source"),
            reversed_config
        );
        thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(&*addr).expect("connect");
            stream.write_all(line.as_bytes()).expect("send");
            let mut response = String::new();
            BufReader::new(&mut stream)
                .read_line(&mut response)
                .expect("read");
            let (_, result) = qss::remote::parse_response(&response).expect("parse");
            assert_eq!(
                result.expect_err("shares the leader's timeout").kind,
                qss::remote::ErrorKind::Timeout
            );
        })
    };

    // Let every follower reach the daemon, then demand service for a
    // *distinct* net while all ten are parked. With the old
    // thread-per-request waiting this would block for the leader's whole
    // budget; on the event loop the lone worker is free.
    thread::sleep(Duration::from_millis(400));
    let other = net_source(3);
    let local = Pipeline::from_source(&other)
        .expect("source parses")
        .link()
        .expect("source links")
        .analyze()
        .to_json();
    let mut client = Client::connect(&*addr).expect("connect");
    let summary = client.check(&other).expect("check while followers park");
    assert_eq!(summary.processes, 1);
    let report = client
        .analyze(&other)
        .expect("analyze while followers park");
    assert_eq!(report.artifact_json(), local);
    assert!(
        started.elapsed() < Duration::from_millis(1300),
        "the distinct net had to be served while the searches were still \
         parked, not after their budget ({:?} elapsed)",
        started.elapsed()
    );

    for follower in followers {
        follower.join().expect("follower thread");
    }
    raw_follower.join().expect("raw follower thread");

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.searches, 1,
        "ten duplicates must spawn exactly one search: {stats:?}"
    );
    assert!(
        stats.coalesced >= 9,
        "every follower must have joined the leader's flight: {stats:?}"
    );
    assert_eq!(
        stats.busy_rejections, 0,
        "parked followers must not consume queue or worker slots: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

/// Open file descriptors of a process, by its `/proc` fd table.
fn fd_count(pid: u32) -> usize {
    std::fs::read_dir(format!("/proc/{pid}/fd"))
        .expect("read the daemon's fd table")
        .count()
}

/// The scaled connection smoke test: one daemon holds 1024+ idle
/// connections on its poll set, still serves the very first one,
/// enforces `--max-connections` on the next, and — once the storm
/// disconnects — returns to its baseline fd count (no descriptor leaks).
/// A second short-lived daemon proves idle reaping still works.
#[test]
fn a_thousand_idle_connections_are_held_capped_and_reaped_without_fd_leaks() {
    use std::io::{BufRead, BufReader, Write};
    const CONNS: usize = 1024;

    let daemon = Daemon::spawn(&[
        "--workers",
        "1",
        "--max-connections",
        &CONNS.to_string(),
        "--idle-timeout",
        "30000",
    ]);
    let pid = daemon.child.id();
    let baseline = fd_count(pid);

    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let stream = std::net::TcpStream::connect(&*daemon.addr)
            .unwrap_or_else(|e| panic!("connection {i} refused: {e}"));
        conns.push(stream);
    }
    // Give the accept loop a moment to register the whole storm, then
    // the connection over the cap must be answered with a typed `busy`
    // line and closed.
    thread::sleep(Duration::from_millis(300));
    let mut over_cap = std::net::TcpStream::connect(&*daemon.addr).expect("connect over cap");
    over_cap
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    BufReader::new(&mut over_cap)
        .read_line(&mut line)
        .expect("read the rejection line");
    let (_, result) = qss::remote::parse_response(&line).expect("rejection is a response");
    assert_eq!(
        result.expect_err("over-cap connection is rejected").kind,
        qss::remote::ErrorKind::Busy
    );
    drop(over_cap);

    // The very first connection of the storm still gets service.
    let first = &mut conns[0];
    first
        .write_all(b"{\"id\": 7, \"kind\": \"check\", \"source\": \"PROCESS p () { int x; }\"}\n")
        .expect("send on the oldest connection");
    let mut response = String::new();
    BufReader::new(&mut *first)
        .read_line(&mut response)
        .expect("read on the oldest connection");
    let (id, result) = qss::remote::parse_response(&response).expect("response");
    assert_eq!(id, Some(7));
    assert!(result.is_ok(), "oldest connection must still serve");

    // Disconnect the storm; the daemon must release every descriptor.
    drop(conns);
    let mut settled = baseline;
    for _ in 0..200 {
        settled = fd_count(pid);
        if settled <= baseline {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    assert!(
        settled <= baseline,
        "daemon leaks fds: {settled} open after the storm, {baseline} before"
    );
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();

    // Idle reaping: a daemon with a 300 ms idle timeout severs a quiet
    // connection on its own.
    let daemon = Daemon::spawn(&["--workers", "1", "--idle-timeout", "300"]);
    let mut idle = std::net::TcpStream::connect(&*daemon.addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let reaped = std::io::Read::read(&mut idle, &mut buf).expect("read EOF from the reaper");
    assert_eq!(
        reaped, 0,
        "the idle connection must be closed by the daemon"
    );
    let mut client = Client::connect(&*daemon.addr).expect("connect");
    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();
}

/// The observability acceptance test: under concurrent pipelined load,
/// the `metrics` snapshot must be internally consistent — per-kind
/// latency histogram counts sum to the `responses` counter, quantiles
/// are ordered within each histogram, and the unified registry carries
/// the same cache counters `stats` reports — and, after a graceful
/// drain, `--trace-out` must hold a valid Chrome trace whose spans cover
/// the queued → search → respond lifecycle with intact parent links.
#[test]
fn metrics_are_internally_consistent_and_the_trace_covers_the_lifecycle() {
    const CLIENTS: usize = 6;
    let trace_path = std::env::temp_dir().join(format!(
        "qssd_e2e_trace_{}_{:x}.json",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let daemon = Daemon::spawn(&[
        "--workers",
        "2",
        "--queue",
        "64",
        "--cache",
        "8",
        "--trace-out",
        trace_path.to_str().expect("utf-8 temp path"),
    ]);
    let addr = daemon.addr.clone();

    // Concurrent pipelined load: every client walks two nets through
    // schedule + link + analyze, so several request kinds populate the
    // latency histograms and the cache counters move.
    let sources: Vec<String> = (0..2u32).map(|i| net_source(2 + i)).collect();
    let mut workers = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let sources = sources.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&*addr).expect("connect");
            for source in &sources {
                loop {
                    match client.schedule(source, None) {
                        Ok(_) => break,
                        Err(qss::remote::ClientError::Server(e))
                            if e.kind == qss::remote::ErrorKind::Busy =>
                        {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(other) => panic!("schedule failed: {other}"),
                    }
                }
                client.link(source, None).expect("link");
                client.analyze(source).expect("analyze");
            }
        }));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }

    let mut client = Client::connect(&*addr).expect("connect");
    let stats = client.stats().expect("stats");
    let metrics = client.metrics().expect("metrics");
    let counter = |name: &str| -> u64 {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("metrics counter `{name}` missing: {metrics:?}"))
    };

    // Histogram bookkeeping happens at the same choke point as the
    // responses counter, so across every request kind (including the
    // `_error` pseudo-kind) the counts must tie out exactly.
    let histograms = metrics
        .get("histograms")
        .and_then(|h| h.as_object())
        .expect("metrics carries a histograms object");
    let mut latency_total = 0u64;
    for (name, summary) in histograms {
        assert!(
            name.starts_with("latency_us."),
            "unexpected histogram `{name}`"
        );
        let field = |f: &str| {
            summary
                .get(f)
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("histogram `{name}` lacks `{f}`: {summary:?}"))
        };
        let (count, min, max) = (field("count"), field("min"), field("max"));
        let (p50, p95, p99) = (field("p50"), field("p95"), field("p99"));
        assert!(count > 0, "empty histogram `{name}` was registered");
        assert!(
            min <= p50 && p50 <= p95 && p95 <= p99,
            "quantiles of `{name}` are not monotone: {summary:?}"
        );
        assert!(max >= min, "bounds of `{name}` are inverted: {summary:?}");
        latency_total += count;
    }
    assert_eq!(
        latency_total,
        counter("responses"),
        "per-kind latency counts must sum to the responses counter: {metrics:?}"
    );
    for kind in ["schedule", "link", "analyze"] {
        let count = histograms
            .iter()
            .find(|(name, _)| name == &format!("latency_us.{kind}"))
            .and_then(|(_, s)| s.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert!(
            count >= (CLIENTS * sources.len()) as u64,
            "every `{kind}` request must land in its histogram: {metrics:?}"
        );
    }

    // "stats" and "metrics" are two views of one registry: the ad-hoc
    // counters and the cache counters must agree between them. The
    // `metrics` request itself is the one request admitted between the
    // two snapshots (same sequential connection), hence the +1.
    assert_eq!(counter("requests"), stats.requests + 1);
    assert_eq!(counter("searches"), stats.searches);
    assert_eq!(counter("coalesced"), stats.coalesced);
    assert_eq!(counter("busy_rejections"), stats.busy_rejections);
    assert_eq!(counter("context_cache.hits"), stats.cache.hits);
    assert_eq!(counter("context_cache.misses"), stats.cache.misses);
    assert!(
        counter("loop.wakeups") > 0,
        "completions must wake the loop"
    );

    client.shutdown().expect("shutdown");
    daemon.assert_clean_exit();

    // The drained daemon must have written a loadable Chrome trace:
    // one JSON object whose `traceEvents` hold matched b/e async pairs
    // for the whole request lifecycle, every parent link resolving to a
    // recorded span.
    let trace_text = std::fs::read_to_string(&trace_path).expect("read --trace-out file");
    let trace: serde_json::Value =
        serde_json::from_str(&trace_text).expect("--trace-out is valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("trace carries traceEvents");
    let phase_names = |phase: &str| -> Vec<&str> {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(phase))
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect()
    };
    let begins = phase_names("b");
    let ends = phase_names("e");
    for stage in ["queued", "search", "respond", "request kind=schedule"] {
        assert!(
            begins.contains(&stage) && ends.contains(&stage),
            "trace must hold a matched b/e pair for `{stage}`"
        );
    }
    let ids: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| e.get("id").and_then(|i| i.as_u64()))
        .collect();
    let mut parents_checked = 0usize;
    for event in events {
        if let Some(parent) = event.get("args").and_then(|a| a.get("parent")) {
            let parent = parent.as_u64().expect("parent ids are integers");
            // Parent 0 is the root (SpanId::NONE); anything else must be
            // a span recorded in this journal — nesting stays intact.
            if parent != 0 {
                assert!(
                    ids.contains(&parent),
                    "span parent {parent} is not recorded in the journal"
                );
                parents_checked += 1;
            }
        }
    }
    assert!(
        parents_checked > 0,
        "the trace must contain nested (parented) spans"
    );
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn qssd_rejects_bad_flags_with_usage_exit_code() {
    let output = Command::new(env!("CARGO_BIN_EXE_qssd"))
        .args(["--frobnicate"])
        .output()
        .expect("run qssd");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown option"), "stderr: {stderr}");
}
