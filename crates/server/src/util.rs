//! Small shared helpers.

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, surviving poisoning: a panic in one request handler
/// must not wedge the whole daemon, and every structure guarded here is
/// valid after any partial update (counters, maps of `Arc`s, queues).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
