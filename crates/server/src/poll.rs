//! A minimal safe wrapper over `poll(2)`.
//!
//! The event loop multiplexes the listener, the wake pipe and every
//! client socket on one thread; `poll` is the one readiness primitive
//! that is in POSIX, needs no registration state (unlike epoll), and has
//! no fd-count ceiling (unlike `select`). The libc declarations are
//! written out by hand — std already links libc on every Unix target, so
//! declaring the symbol is enough and the workspace stays free of
//! external dependencies.
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! wrapper's contract keeps it sound: `poll` writes nothing but the
//! `revents` fields inside the caller's slice, which stays alive and
//! exclusive for the whole call.
#![allow(unsafe_code)]

use std::ffi::{c_int, c_short, c_ulong};
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// The fd wants readable-readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// The fd wants writable-readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (a harness bug if it ever appears).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, laid out exactly as `poll(2)` expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd is ignored by the
    /// kernel — the idiomatic way to keep slice indices stable).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Returned events, written by the kernel.
    pub revents: c_short,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask` came back in `revents`.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Waits until at least one fd in `fds` is ready or `timeout` elapses
/// (`None` waits indefinitely). Returns how many entries have non-zero
/// `revents`; `EINTR` surfaces as `Ok(0)` — a spurious wake-up the event
/// loop absorbs by recomputing its timers.
///
/// # Errors
/// Propagates `poll(2)` failures other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(t) => {
            // Round up so a 100 µs deadline does not busy-spin at 0 ms.
            let ms = t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
            ms.min(c_int::MAX as u128) as c_int
        }
    };
    // SAFETY: `fds` is a valid, exclusively borrowed slice of `PollFd`,
    // which is `#[repr(C)]`-identical to `struct pollfd`; the kernel
    // writes only within its bounds (the `revents` fields).
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_is_reported_and_timeouts_expire() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Nothing to read yet: the timeout expires with zero ready fds.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].has(POLLIN));
        // One byte on the peer makes the watched end readable.
        (&b).write_all(&[1]).expect("write wake byte");
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn hangup_is_reported_without_being_requested() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        // A closed peer surfaces as POLLIN (EOF read) and/or POLLHUP.
        assert!(fds[0].has(POLLIN | POLLHUP));
    }

    #[test]
    fn negative_fds_are_ignored() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (&b).write_all(&[1]).expect("write");
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(!fds[0].has(POLLIN));
        assert!(fds[1].has(POLLIN));
    }
}
