//! `qss_server` — the quasi-static scheduling pipeline as a long-running
//! TCP service (`qssd`).
//!
//! The ROADMAP's north star is heavy concurrent scheduling traffic; a
//! batch `qssc` invocation re-derives all per-net analyses on every run.
//! `qssd` keeps them warm instead:
//!
//! * **Protocol** — newline-delimited JSON over TCP (see
//!   [`qss::remote`] and `PROTOCOL.md`), request kinds `check` / `link`
//!   / `schedule` / `generate` / `simulate` / `stats` / `shutdown`,
//!   each pipeline kind returning byte-for-byte the artifact the local
//!   [`qss::Pipeline`] stage serializes. Protocol v2 (`"version": 2`)
//!   lets responses complete **out of order**, correlated by `id`; v1
//!   clients keep strict in-order delivery.
//! * **Connection core** — one readiness-driven event loop (`poll(2)`
//!   over nonblocking sockets) owns every connection: it reads, parses
//!   and writes incrementally, so a slow `schedule` on one connection
//!   never head-of-line-blocks a fast `check` pipelined behind it.
//! * **Compute split** — a fixed worker pool does fast admission
//!   (parse, link, analyze); the EP searches themselves run on
//!   dedicated search threads gated by a slot semaphore, and coalesced
//!   followers park a continuation on the event loop — neither holds a
//!   worker while waiting.
//! * **Context cache** ([`ContextCache`]) — per-net
//!   [`qss::SearchContext`]s keyed by the order-independent net
//!   fingerprint (guarded by the ordered digest), LRU-bounded, with
//!   hit/miss/eviction counters surfaced through `stats`.
//! * **Coalescing** — concurrent `schedule`-bearing requests for the
//!   same `(fingerprint, digest, config)` attach to one in-flight search
//!   and all receive the shared result.
//! * **Backpressure** — a bounded job queue and a bounded search-slot
//!   semaphore; both shed load with a typed `busy` error instead of
//!   stalling the connection.
//! * **Graceful shutdown** — a `shutdown` request acknowledges, stops
//!   the accept loop, drains every outstanding request, writes every
//!   response, then exits without leaking listeners (what the CI
//!   harness relies on).
//!
//! ```no_run
//! use qss_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1, ephemeral port
//! println!("listening on {}", server.local_addr());
//! server.run()?; // blocks until a `shutdown` request
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod cache;
mod coalesce;
mod poll;
mod pool;
mod service;
mod util;

pub use cache::ContextCache;
/// The wire protocol and client, re-exported from the facade so server
/// users need a single dependency.
pub use qss::remote::{
    Client, ClientError, ErrorKind, RemoteArtifact, Request, RequestKind, ServerStats, WireError,
};

use crate::poll::PollFd;
use crate::pool::{JobQueue, SubmitError};
use crate::service::{Engine, Reply};
use crate::util::lock;
use qss::remote::{response_error, response_ok, DEFAULT_MAX_LINE_BYTES};
use qss_obs::{Observer, SpanId};
use serde_json::{Number, Value};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads doing request admission (parse / link / analyze).
    /// Also the bound on concurrently running schedule searches, which
    /// execute on their own threads gated by a slot semaphore.
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it are answered with a
    /// typed `busy` error.
    pub queue_capacity: usize,
    /// Capacity of the [`ContextCache`] (0 disables context caching).
    pub cache_capacity: usize,
    /// Per-request line limit in bytes; longer lines are drained and
    /// answered with `too_large`.
    pub max_line_bytes: usize,
    /// Deadline per pipeline request, measured from the moment the
    /// request line is parsed: it bounds queue wait, the schedule search
    /// (cancelled cooperatively mid-flight) and coalesced waits, each
    /// expiry answering a typed `timeout` error. It also caps how long
    /// one request line may dribble in. `None` = unbounded.
    pub request_timeout: Option<Duration>,
    /// Idle-connection reaper: a connection with no request in flight
    /// and no line in progress for this long is closed. `None` =
    /// connections idle forever.
    pub idle_timeout: Option<Duration>,
    /// Bound on write stalls: a connection whose outbound buffer makes
    /// no progress for this long is closed. `None` = wait forever.
    pub write_timeout: Option<Duration>,
    /// Cap on concurrently served connections; excess connections are
    /// answered with one typed `busy` error line and closed. `0` =
    /// unlimited.
    pub max_connections: usize,
    /// Path the span journal is exported to (Chrome trace-event JSON,
    /// loadable in Perfetto / `chrome://tracing`) when the server drains
    /// after a graceful shutdown. `None` = no trace file.
    pub trace_out: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: 4 * workers.max(1),
            cache_capacity: 64,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            request_timeout: None,
            idle_timeout: None,
            write_timeout: None,
            max_connections: 0,
            trace_out: None,
        }
    }
}

/// Bound on retained span events: at ~10 events per request this keeps
/// the trace of the last few thousand requests, in well under 2 MiB.
const JOURNAL_CAPACITY: usize = 32 * 1024;

/// One queued unit of work: a parsed request, the connection and
/// per-connection sequence number its response must be posted back to,
/// and its deadline (when the server runs with `--request-timeout`).
struct Job {
    request: Request,
    conn: u64,
    seq: u64,
    deadline: Option<Instant>,
    /// The request's span (ends when its response is posted).
    span: SpanId,
    /// The `queued` child span (ends when a worker picks the job up).
    queued: SpanId,
}

/// One finished response traveling from a worker / search thread back to
/// the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    result: Result<Value, WireError>,
}

/// Everything the event loop, workers and search threads share.
struct ServerState {
    config: ServerConfig,
    engine: Arc<Engine>,
    queue: JobQueue<Job>,
    /// Finished responses waiting for the event loop to pick them up.
    completions: Mutex<Vec<Completion>>,
    /// Write end of the self-pipe; one byte here wakes the event loop
    /// out of `poll`.
    wake: UnixStream,
    addr: SocketAddr,
}

impl ServerState {
    /// Posts a finished response and wakes the event loop. Safe to call
    /// more than once for the same `(conn, seq)` — the event loop drops
    /// completions for sequences it has already answered.
    fn post(&self, conn: u64, seq: u64, result: Result<Value, WireError>) {
        lock(&self.completions).push(Completion { conn, seq, result });
        // A full pipe buffer means wake-ups are already pending.
        let _ = (&self.wake).write(&[1u8]);
    }
}

/// A bound, not-yet-running scheduling service.
pub struct Server {
    listener: TcpListener,
    wake_rx: UnixStream,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and prepares the shared state.
    ///
    /// # Errors
    /// Propagates bind errors (bad address, port in use).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        let state = Arc::new(ServerState {
            engine: Arc::new(Engine::new(
                config.cache_capacity,
                config.workers.max(1),
                Observer::armed(JOURNAL_CAPACITY),
            )),
            queue: JobQueue::new(config.queue_capacity),
            completions: Mutex::new(Vec::new()),
            wake: wake_tx,
            addr,
            config,
        });
        Ok(Server {
            listener,
            wake_rx,
            state,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `shutdown` request arrives, then drains: every
    /// outstanding request finishes, its response is written, and only
    /// then do connections close and the process move on.
    ///
    /// # Errors
    /// Propagates fatal listener / poll errors (per-connection errors
    /// are contained).
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            wake_rx,
            state,
        } = self;
        listener.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        // The write end must not block workers posting completions when
        // the event loop is slow to drain the pipe.
        state.wake.set_nonblocking(true)?;
        let mut workers = Vec::new();
        for _ in 0..state.config.workers.max(1) {
            let state = Arc::clone(&state);
            // Admission work (linking, analysis) recurses over net
            // structure; give workers search-sized stacks so deep nets
            // never overflow them (virtual memory — cheap).
            workers.push(
                thread::Builder::new()
                    .stack_size(qss::core::SEARCH_THREAD_STACK_BYTES)
                    .spawn(move || worker_loop(&state))
                    .expect("spawn a worker thread"),
            );
        }
        let mut event_loop = EventLoop {
            state: Arc::clone(&state),
            listener: Some(listener),
            wake_rx,
            conns: HashMap::new(),
            next_conn: 0,
            draining: false,
            accept_backoff: Duration::from_millis(10),
            accept_retry_at: None,
        };
        let result = event_loop.run();
        drop(event_loop);
        // Normally closed when the drain began; on a fatal loop error
        // this is what lets the workers exit.
        state.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        state.engine.join_searches();
        // Every span has ended by now (all requests answered, all search
        // threads joined), so the exported trace is complete.
        if let Some(path) = &state.config.trace_out {
            if let Some(mut trace) = state.engine.observer.export_chrome_trace() {
                trace.push('\n');
                if let Err(e) = std::fs::write(path, trace) {
                    eprintln!("qssd: could not write trace to {path}: {e}");
                }
            }
        }
        result
    }

    /// Runs the server on a background thread; the handle exposes the
    /// address and joins on shutdown. The in-process flavor used by
    /// tests and benchmarks.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Handle of a [`Server::spawn`]ed background server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (after some client sent `shutdown`).
    ///
    /// # Errors
    /// Propagates the server's exit status.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }

    /// Sends a `shutdown` request and joins the server.
    ///
    /// # Errors
    /// Propagates client and server errors.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        let mut client = Client::connect(self.addr)?;
        client
            .shutdown()
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.join()
    }
}

/// The worker loop: admit queued jobs until the queue closes. The
/// engine's reply callback posts the finished response back to the event
/// loop; panics inside a request are contained — the client gets a typed
/// `internal` error and the worker lives on.
fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.next() {
        let Job {
            request,
            conn,
            seq,
            deadline,
            span,
            queued,
        } = job;
        // The queue wait ends the moment a worker owns the job.
        state.engine.observer.span_end(queued, "queued", "worker");
        // A job whose deadline passed while it sat in the queue is
        // answered without running: the worker slot goes to live work.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            state.post(
                conn,
                seq,
                Err(WireError::new(
                    ErrorKind::Timeout,
                    "request deadline expired before a worker picked it up",
                )),
            );
            continue;
        }
        let reply_state = Arc::clone(state);
        let reply: Reply = Box::new(move |result| reply_state.post(conn, seq, result));
        let engine = Arc::clone(&state.engine);
        if catch_unwind(AssertUnwindSafe(|| {
            engine.handle(request, deadline, span, reply)
        }))
        .is_err()
        {
            // The reply callback may or may not have fired before the
            // panic; a second post for an answered sequence is dropped.
            state.post(
                conn,
                seq,
                Err(WireError::new(
                    ErrorKind::Internal,
                    "request handler panicked",
                )),
            );
        }
    }
}

/// Response metadata carried from admission to the response choke point:
/// what the latency histogram, the per-kind counters and the request
/// span need when the response is finally posted.
#[derive(Clone, Copy)]
struct RespMeta {
    /// Request kind name; `"_error"` for lines that never parsed into a
    /// kind, so per-kind histogram counts still sum to total responses.
    kind: &'static str,
    /// Journal-clock reading when the request line was parsed.
    started_micros: u64,
    /// The request's span ([`SpanId::NONE`] when the observer is
    /// disabled or the line never parsed).
    span: SpanId,
}

impl RespMeta {
    fn error(state: &ServerState) -> RespMeta {
        RespMeta {
            kind: "_error",
            started_micros: state.engine.observer.now_micros(),
            span: SpanId::NONE,
        }
    }
}

/// A request admitted to the queue, awaiting its completion.
struct PendingRequest {
    id: Option<u64>,
    deadline: Option<Instant>,
    meta: RespMeta,
}

/// A completed response a v1 connection is holding until every earlier
/// sequence has been released (in-order delivery).
struct HeldResponse {
    text: String,
}

/// Per-connection state owned by the event loop.
struct Conn {
    id: u64,
    stream: TcpStream,
    /// Bytes read but not yet split into a full line.
    read_buf: Vec<u8>,
    /// A line blew past `max_line_bytes`; its bytes are being discarded
    /// until the newline, which answers `too_large`.
    oversized: bool,
    /// Outbound bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Protocol version, sticky per connection: starts at 1 (strict
    /// in-order responses); the first request carrying `"version": 2`
    /// switches to out-of-order delivery for good.
    version: u32,
    /// Sequence number assigned to the next response-bearing line.
    next_seq: u64,
    /// v1 ordering: the next sequence allowed onto the wire.
    next_release: u64,
    /// Requests in flight (queued, searching, or parked on a flight).
    pending: HashMap<u64, PendingRequest>,
    /// v1 ordering: completed responses blocked behind an earlier one.
    held: BTreeMap<u64, HeldResponse>,
    /// The peer closed its write half; we still answer what's in
    /// flight.
    read_closed: bool,
    last_activity: Instant,
    /// When the currently dribbling request line started arriving.
    line_started_at: Option<Instant>,
    last_write_progress: Instant,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        let now = Instant::now();
        Conn {
            id,
            stream,
            read_buf: Vec::new(),
            oversized: false,
            write_buf: Vec::new(),
            write_pos: 0,
            version: 1,
            next_seq: 0,
            next_release: 0,
            pending: HashMap::new(),
            held: BTreeMap::new(),
            read_closed: false,
            last_activity: now,
            line_started_at: None,
            last_write_progress: now,
        }
    }

    fn has_unwritten(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// A partial request line is in progress (dribbling or oversized).
    fn line_in_progress(&self) -> bool {
        self.oversized || !self.read_buf.is_empty()
    }

    /// Nothing in flight, nothing buffered: eligible for idle reaping.
    fn is_quiet(&self) -> bool {
        self.pending.is_empty() && self.held.is_empty() && !self.has_unwritten()
    }

    /// The peer is gone and every outstanding response was delivered.
    fn should_close(&self) -> bool {
        self.read_closed && self.is_quiet() && !self.line_in_progress()
    }
}

/// The readiness-driven connection core: one thread, one `poll` set,
/// every connection.
struct EventLoop {
    state: Arc<ServerState>,
    /// `None` once draining — closing the listener is what stops new
    /// connections.
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    draining: bool,
    accept_backoff: Duration,
    /// Transient accept failure (EMFILE etc.): leave the listener out of
    /// the poll set until this instant instead of spinning.
    accept_retry_at: Option<Instant>,
}

/// Poll-set bookkeeping: what each pollfd slot stands for.
enum Token {
    Listener,
    Wake,
    Conn(u64),
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        loop {
            self.apply_completions();
            if self.draining && self.drained() {
                return Ok(());
            }
            let now = Instant::now();
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.conns.len() + 2);
            let mut tokens: Vec<Token> = Vec::with_capacity(self.conns.len() + 2);
            if let Some(listener) = &self.listener {
                if self.accept_retry_at.is_none_or(|at| now >= at) {
                    self.accept_retry_at = None;
                    fds.push(PollFd::new(listener.as_raw_fd(), poll::POLLIN));
                    tokens.push(Token::Listener);
                }
            }
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), poll::POLLIN));
            tokens.push(Token::Wake);
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !conn.read_closed {
                    events |= poll::POLLIN;
                }
                if conn.has_unwritten() {
                    events |= poll::POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(Token::Conn(id));
            }
            let timeout = self
                .next_deadline(now)
                .map(|deadline| deadline.saturating_duration_since(now));
            poll::poll_fds(&mut fds, timeout)?;
            for (fd, token) in fds.iter().zip(&tokens) {
                if fd.revents == 0 {
                    continue;
                }
                match token {
                    Token::Wake => {
                        self.state.engine.counters.wakeups.inc();
                        drain_wake(&self.wake_rx);
                    }
                    Token::Listener => self.accept_all(),
                    Token::Conn(id) => self.service_conn(*id, *fd),
                }
            }
            self.expire_timers();
        }
    }

    /// Moves finished responses from workers / search threads onto their
    /// connections. Completions for already-answered (or vanished)
    /// sequences are dropped — which is what makes double-posting after
    /// a panic, and late results after a deadline expiry, harmless.
    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = std::mem::take(&mut *lock(&self.state.completions));
        let state = Arc::clone(&self.state);
        for completion in batch {
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                if let Some(pending) = conn.pending.remove(&completion.seq) {
                    complete(
                        &state,
                        conn,
                        completion.seq,
                        pending.id,
                        pending.meta,
                        completion.result,
                    );
                }
            }
        }
    }

    /// Whether the drain is finished: every admitted request answered
    /// and every response byte handed to its socket.
    fn drained(&self) -> bool {
        self.conns
            .values()
            .all(|c| c.pending.is_empty() && c.held.is_empty() && !c.has_unwritten())
            && lock(&self.state.completions).is_empty()
    }

    /// Stops accepting, closes the queue; called once the `shutdown`
    /// acknowledgement is on its way out.
    fn begin_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.listener = None;
            self.state.queue.close();
        }
    }

    /// The earliest instant any timer fires; `None` = sleep until I/O.
    fn next_deadline(&self, _now: Instant) -> Option<Instant> {
        let cfg = &self.state.config;
        let line_limit = cfg.request_timeout.or(cfg.idle_timeout);
        let mut earliest: Option<Instant> = self.accept_retry_at;
        let mut merge = |candidate: Instant| {
            earliest = Some(match earliest {
                Some(current) => current.min(candidate),
                None => candidate,
            });
        };
        for conn in self.conns.values() {
            if conn.line_in_progress() {
                if let (Some(limit), Some(started)) = (line_limit, conn.line_started_at) {
                    merge(started + limit);
                }
            } else if conn.is_quiet() && !conn.read_closed {
                if let Some(idle) = cfg.idle_timeout {
                    merge(conn.last_activity + idle);
                }
            }
            if conn.has_unwritten() {
                if let Some(stall) = cfg.write_timeout {
                    merge(conn.last_write_progress + stall);
                }
            }
            for pending in conn.pending.values() {
                if let Some(deadline) = pending.deadline {
                    merge(deadline);
                }
            }
        }
        earliest
    }

    /// Accepts until the listener would block. Transient failures put
    /// the listener on an exponential-backoff cooldown instead of
    /// killing the server.
    fn accept_all(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = Duration::from_millis(10);
                    let max = self.state.config.max_connections;
                    if max > 0 && self.conns.len() >= max {
                        let counters = &self.state.engine.counters;
                        counters.requests.inc();
                        counters.busy_rejections.inc();
                        let error = WireError::new(
                            ErrorKind::Busy,
                            format!("connection limit reached ({max}); retry later"),
                        );
                        // One best-effort nonblocking write; never let a
                        // rejected peer stall the event loop.
                        let mut line = respond_error(&self.state, None, error);
                        line.push('\n');
                        let mut stream = stream;
                        stream.set_nonblocking(true).ok();
                        let _ = stream.write(line.as_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(id, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // EMFILE/ENFILE, memory pressure: heal with time.
                    self.accept_retry_at = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(Duration::from_secs(1));
                    return;
                }
            }
        }
    }

    /// Handles one connection's readiness: read and parse what arrived,
    /// flush what fits, drop the connection on transport errors.
    fn service_conn(&mut self, id: u64, fd: PollFd) {
        let state = Arc::clone(&self.state);
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut dead = fd.has(poll::POLLNVAL);
        let mut begin_drain = false;
        if !dead && fd.has(poll::POLLIN | poll::POLLHUP | poll::POLLERR) && !conn.read_closed {
            let (alive, drain) = read_conn(&state, conn, draining);
            dead = !alive;
            begin_drain = drain;
        }
        if !dead && conn.has_unwritten() && flush_conn(&state, conn).is_err() {
            dead = true;
        }
        if !dead && conn.should_close() {
            dead = true;
        }
        if dead {
            self.conns.remove(&id);
        }
        if begin_drain {
            self.begin_drain();
        }
    }

    /// Fires expired timers: request deadlines answer `timeout`,
    /// dribbling lines and idle connections are reaped, stalled writers
    /// are cut.
    fn expire_timers(&mut self) {
        let state = Arc::clone(&self.state);
        let cfg = &state.config;
        let line_limit = cfg.request_timeout.or(cfg.idle_timeout);
        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            let expired: Vec<u64> = conn
                .pending
                .iter()
                .filter(|(_, p)| p.deadline.is_some_and(|d| now >= d))
                .map(|(&seq, _)| seq)
                .collect();
            for seq in expired {
                if let Some(pending) = conn.pending.remove(&seq) {
                    complete(
                        &state,
                        conn,
                        seq,
                        pending.id,
                        pending.meta,
                        Err(WireError::new(
                            ErrorKind::Timeout,
                            "request deadline expired",
                        )),
                    );
                }
            }
            if conn.has_unwritten() && flush_conn(&state, conn).is_err() {
                dead.push(id);
                continue;
            }
            if conn.line_in_progress() {
                if let (Some(limit), Some(started)) = (line_limit, conn.line_started_at) {
                    if now >= started + limit {
                        // A slowloris line (or one the peer abandoned).
                        dead.push(id);
                        continue;
                    }
                }
            } else if conn.is_quiet() && !conn.read_closed {
                if let Some(idle) = cfg.idle_timeout {
                    if now >= conn.last_activity + idle {
                        dead.push(id);
                        continue;
                    }
                }
            }
            if conn.has_unwritten() {
                if let Some(stall) = cfg.write_timeout {
                    if now >= conn.last_write_progress + stall {
                        dead.push(id);
                        continue;
                    }
                }
            }
            if conn.should_close() {
                dead.push(id);
            }
        }
        for id in dead {
            self.conns.remove(&id);
        }
    }
}

/// Swallows pending wake bytes so the next `poll` sleeps.
fn drain_wake(mut wake_rx: &UnixStream) {
    let mut sink = [0u8; 64];
    loop {
        match wake_rx.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

/// Reads until the socket would block, splitting and dispatching full
/// lines as they arrive. Returns `(connection still alive, begin
/// drain?)`.
fn read_conn(state: &ServerState, conn: &mut Conn, draining: bool) -> (bool, bool) {
    let mut begin_drain = false;
    let mut scratch = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                // Peer closed its write half; outstanding responses are
                // still delivered before the connection goes away.
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.read_buf.extend_from_slice(&scratch[..n]);
                begin_drain |= process_buffer(state, conn, draining);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.line_in_progress() {
                    state.engine.counters.partial_reads.inc();
                }
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return (false, begin_drain),
        }
    }
    (true, begin_drain)
}

/// Splits the read buffer into lines and dispatches each; enforces the
/// line-size limit and tracks the dribbling-line deadline.
fn process_buffer(state: &ServerState, conn: &mut Conn, draining: bool) -> bool {
    let mut begin_drain = false;
    while let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        let oversized = std::mem::take(&mut conn.oversized)
            || line.len().saturating_sub(1) > state.config.max_line_bytes;
        if oversized {
            state.engine.counters.requests.inc();
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let error = WireError::new(
                ErrorKind::TooLarge,
                format!(
                    "request line exceeds the {}-byte limit",
                    state.config.max_line_bytes
                ),
            );
            complete(state, conn, seq, None, RespMeta::error(state), Err(error));
        } else {
            begin_drain |= handle_line(state, conn, &line[..line.len() - 1], draining);
        }
    }
    if !conn.oversized && conn.read_buf.len() > state.config.max_line_bytes {
        // Discard the oversized line as it arrives; the eventual newline
        // answers `too_large`.
        conn.oversized = true;
        conn.read_buf.clear();
    }
    if conn.line_in_progress() {
        conn.line_started_at.get_or_insert_with(Instant::now);
    } else {
        conn.line_started_at = None;
    }
    begin_drain
}

/// Parses and dispatches one request line. Control requests answer
/// inline; pipeline requests go to the worker queue and complete later
/// through the completion channel.
fn handle_line(state: &ServerState, conn: &mut Conn, raw: &[u8], draining: bool) -> bool {
    let text = String::from_utf8_lossy(raw);
    let line = text.trim();
    if line.is_empty() {
        return false;
    }
    state.engine.counters.requests.inc();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(error) => {
            complete(state, conn, seq, None, RespMeta::error(state), Err(error));
            return false;
        }
    };
    if request.version.unwrap_or(1) >= 2 && conn.version < 2 {
        switch_to_v2(conn);
    }
    let mut begin_drain = false;
    let id = request.id;
    let observer = &state.engine.observer;
    let kind_name = request.kind.name();
    let span = if observer.is_armed() {
        observer.span_begin(&format!("request kind={kind_name}"), SpanId::NONE, "loop")
    } else {
        SpanId::NONE
    };
    let meta = RespMeta {
        kind: kind_name,
        started_micros: observer.now_micros(),
        span,
    };
    match request.kind {
        // Control requests bypass the queue: they must answer promptly
        // even when the workers are saturated.
        RequestKind::Stats => {
            complete(state, conn, seq, id, meta, Ok(stats_value(state)));
        }
        RequestKind::Metrics => {
            complete(state, conn, seq, id, meta, Ok(metrics_value(state)));
        }
        RequestKind::Shutdown => {
            // Acknowledge, then drain: the ack is queued (held for v1
            // ordering if needed) and the drain guarantees it — like
            // every outstanding response — still reaches the wire.
            let ack = Value::Object(vec![("stopping".to_string(), Value::Bool(true))]);
            complete(state, conn, seq, id, meta, Ok(ack));
            begin_drain = true;
        }
        _ if draining => {
            let error = WireError::new(ErrorKind::ShuttingDown, "server is draining for shutdown");
            complete(state, conn, seq, id, meta, Err(error));
        }
        _ => {
            // The deadline clock starts when the request is accepted, so
            // it covers queue wait as well as the search itself.
            let deadline = state.config.request_timeout.map(|t| Instant::now() + t);
            conn.pending
                .insert(seq, PendingRequest { id, deadline, meta });
            let queued = observer.span_begin("queued", span, "loop");
            let submitted = state.queue.submit(Job {
                request,
                conn: conn.id,
                seq,
                deadline,
                span,
                queued,
            });
            match submitted {
                Ok(()) => {}
                Err(SubmitError::Full) => {
                    conn.pending.remove(&seq);
                    observer.span_end(queued, "queued", "loop");
                    state.engine.counters.busy_rejections.inc();
                    let error = WireError::new(
                        ErrorKind::Busy,
                        format!(
                            "worker queue is full ({} jobs); retry later",
                            state.config.queue_capacity
                        ),
                    );
                    complete(state, conn, seq, id, meta, Err(error));
                }
                Err(SubmitError::Closed) => {
                    conn.pending.remove(&seq);
                    observer.span_end(queued, "queued", "loop");
                    let error =
                        WireError::new(ErrorKind::ShuttingDown, "server is draining for shutdown");
                    complete(state, conn, seq, id, meta, Err(error));
                }
            }
        }
    }
    begin_drain
}

/// Upgrades a connection to v2 (out-of-order delivery). Responses held
/// for v1 ordering are flushed in sequence order — from here on,
/// completion order is wire order.
fn switch_to_v2(conn: &mut Conn) {
    conn.version = 2;
    for (_, held) in std::mem::take(&mut conn.held) {
        push_response(conn, &held.text);
    }
}

/// Finishes sequence `seq` with `result`: formats the response line and
/// either writes it now (v2) or releases it in order (v1).
fn complete(
    state: &ServerState,
    conn: &mut Conn,
    seq: u64,
    id: Option<u64>,
    meta: RespMeta,
    result: Result<Value, WireError>,
) {
    let observer = &state.engine.observer;
    state.engine.counters.responses.inc();
    if observer.is_armed() {
        let elapsed = observer.now_micros().saturating_sub(meta.started_micros);
        observer
            .histogram(&format!("latency_us.{}", meta.kind))
            .record(elapsed);
    }
    let respond = observer.span_begin("respond", meta.span, "loop");
    let text = match result {
        Ok(value) => response_ok(id, value),
        Err(error) => respond_error(state, id, error),
    };
    if conn.version >= 2 {
        push_response(conn, &text);
    } else {
        if seq != conn.next_release {
            state.engine.counters.held_responses.inc();
        }
        conn.held.insert(seq, HeldResponse { text });
        while let Some(held) = conn.held.remove(&conn.next_release) {
            push_response(conn, &held.text);
            conn.next_release += 1;
        }
    }
    observer.span_end(respond, "respond", "loop");
    if meta.span.is_recorded() {
        observer.span_end(meta.span, &format!("request kind={}", meta.kind), "loop");
    }
}

/// Appends one response line to the connection's outbound buffer.
fn push_response(conn: &mut Conn, text: &str) {
    if !conn.has_unwritten() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        conn.last_write_progress = Instant::now();
    }
    conn.write_buf.extend_from_slice(text.as_bytes());
    conn.write_buf.push(b'\n');
}

/// Writes as much buffered output as the socket accepts.
///
/// # Errors
/// A transport error (the caller drops the connection).
fn flush_conn(state: &ServerState, conn: &mut Conn) -> io::Result<()> {
    while conn.has_unwritten() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => {
                conn.write_pos += n;
                let now = Instant::now();
                conn.last_write_progress = now;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.has_unwritten() {
                    state.engine.counters.partial_writes.inc();
                }
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if !conn.has_unwritten() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    Ok(())
}

/// Serializes an error response, counting it (and `timeout` responses in
/// their own counter, whatever path produced them).
fn respond_error(state: &ServerState, id: Option<u64>, error: WireError) -> String {
    state.engine.counters.errors.inc();
    if error.kind == ErrorKind::Timeout {
        state.engine.counters.timeouts.inc();
    }
    response_error(id, &error)
}

/// The `stats` payload.
fn stats_value(state: &ServerState) -> Value {
    let counters = &state.engine.counters;
    let stats = ServerStats {
        requests: counters.requests.get(),
        errors: counters.errors.get(),
        busy_rejections: counters.busy_rejections.get(),
        coalesced: counters.coalesced.get(),
        timeouts: counters.timeouts.get(),
        cancelled: counters.cancelled.get(),
        searches: counters.searches.get(),
        workers: state.config.workers.max(1) as u64,
        queue_capacity: state.config.queue_capacity as u64,
        cache: state.engine.cache.stats(),
    };
    serde_json::to_value(&stats).expect("stats serialization is infallible")
}

/// The `metrics` payload: a full snapshot of the observability registry —
/// every counter the server maintains plus quantile summaries of every
/// latency histogram — serialized deterministically (names sorted).
fn metrics_value(state: &ServerState) -> Value {
    let snapshot = state.engine.observer.snapshot();
    let counters = snapshot
        .counters
        .into_iter()
        .map(|(name, value)| (name, Value::Number(Number::UInt(value))))
        .collect();
    let histograms = snapshot
        .histograms
        .into_iter()
        .map(|(name, hist)| {
            let summary = Value::Object(vec![
                ("count".to_string(), Value::Number(Number::UInt(hist.count))),
                ("min".to_string(), Value::Number(Number::UInt(hist.min))),
                ("max".to_string(), Value::Number(Number::UInt(hist.max))),
                (
                    "mean".to_string(),
                    Value::Number(Number::Float(hist.mean())),
                ),
                (
                    "p50".to_string(),
                    Value::Number(Number::UInt(hist.quantile(0.50))),
                ),
                (
                    "p95".to_string(),
                    Value::Number(Number::UInt(hist.quantile(0.95))),
                ),
                (
                    "p99".to_string(),
                    Value::Number(Number::UInt(hist.quantile(0.99))),
                ),
            ]);
            (name, summary)
        })
        .collect();
    Value::Object(vec![
        ("counters".to_string(), Value::Object(counters)),
        ("histograms".to_string(), Value::Object(histograms)),
        (
            "journal_dropped".to_string(),
            Value::Number(Number::UInt(state.engine.observer.journal_dropped())),
        ),
    ])
}
