//! `qss_server` — the quasi-static scheduling pipeline as a long-running
//! TCP service (`qssd`).
//!
//! The ROADMAP's north star is heavy concurrent scheduling traffic; a
//! batch `qssc` invocation re-derives all per-net analyses on every run.
//! `qssd` keeps them warm instead:
//!
//! * **Protocol** — newline-delimited JSON over TCP (see
//!   [`qss::remote`] and `PROTOCOL.md`), request kinds `check` / `link`
//!   / `schedule` / `generate` / `simulate` / `stats` / `shutdown`,
//!   each pipeline kind returning byte-for-byte the artifact the local
//!   [`qss::Pipeline`] stage serializes.
//! * **Context cache** ([`ContextCache`]) — per-net
//!   [`qss::SearchContext`]s keyed by the order-independent net
//!   fingerprint (guarded by the ordered digest), LRU-bounded, with
//!   hit/miss/eviction counters surfaced through `stats`.
//! * **Coalescing** — concurrent `schedule`-bearing requests for the
//!   same `(fingerprint, digest, config)` attach to one in-flight search
//!   and all receive the shared result.
//! * **Backpressure** — a fixed worker pool drains a bounded queue;
//!   when the queue is full, requests fail fast with a typed `busy`
//!   error instead of stalling the connection.
//! * **Graceful shutdown** — a `shutdown` request stops the accept
//!   loop, drains every queued job, then unblocks idle connections; the
//!   process exits without leaking listeners (what the CI harness relies
//!   on).
//!
//! ```no_run
//! use qss_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1, ephemeral port
//! println!("listening on {}", server.local_addr());
//! server.run()?; // blocks until a `shutdown` request
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod cache;
mod coalesce;
mod pool;
mod service;
mod util;

pub use cache::ContextCache;
/// The wire protocol and client, re-exported from the facade so server
/// users need a single dependency.
pub use qss::remote::{
    Client, ClientError, ErrorKind, RemoteArtifact, Request, RequestKind, ServerStats, WireError,
};

use crate::pool::{JobQueue, SubmitError};
use crate::service::{Counters, Engine};
use crate::util::lock;
use qss::remote::{
    read_line_bounded, read_line_bounded_with_tick, response_error, response_ok, LineRead,
    DEFAULT_MAX_LINE_BYTES,
};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing pipeline requests.
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it are answered with a
    /// typed `busy` error.
    pub queue_capacity: usize,
    /// Capacity of the [`ContextCache`] (0 disables context caching).
    pub cache_capacity: usize,
    /// Per-request line limit in bytes; longer lines are drained and
    /// answered with `too_large`.
    pub max_line_bytes: usize,
    /// Deadline per pipeline request, measured from the moment the
    /// request line is parsed: it bounds queue wait, the schedule search
    /// (cancelled cooperatively mid-flight) and coalesced waits, each
    /// expiry answering a typed `timeout` error. It also caps how long
    /// one request line may dribble in. `None` = unbounded.
    pub request_timeout: Option<Duration>,
    /// Idle-connection reaper: a connection with no request line in
    /// progress for this long is closed. `None` = connections idle
    /// forever.
    pub idle_timeout: Option<Duration>,
    /// Socket write timeout for response lines, ending dead-peer hangs
    /// mid-write. `None` = blocking writes.
    pub write_timeout: Option<Duration>,
    /// Cap on concurrently served connections; excess connections are
    /// answered with one typed `busy` error line and closed. `0` =
    /// unlimited.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: 4 * workers.max(1),
            cache_capacity: 64,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            request_timeout: None,
            idle_timeout: None,
            write_timeout: None,
            max_connections: 0,
        }
    }
}

/// One queued unit of work: a parsed request, its deadline (when the
/// server runs with `--request-timeout`) and the channel its response
/// travels back on.
struct Job {
    request: Request,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Value, WireError>>,
}

/// Everything the accept loop, connection threads and workers share.
struct ServerState {
    config: ServerConfig,
    engine: Engine,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Live client sockets, shut down after the drain so blocked reads
    /// unblock and connection threads exit.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
}

impl ServerState {
    /// Flags shutdown and wakes the accept loop (idempotent).
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // The accept loop blocks in `accept`; a throwaway connection
            // wakes it so it can observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A bound, not-yet-running scheduling service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and prepares the shared state.
    ///
    /// # Errors
    /// Propagates bind errors (bad address, port in use).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine: Engine::new(config.cache_capacity),
            queue: JobQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            addr,
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(0),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a `shutdown` request arrives, then drains: queued
    /// jobs all execute, their responses are written, and only then are
    /// idle connections severed.
    ///
    /// # Errors
    /// Propagates fatal listener errors (per-connection errors are
    /// contained).
    pub fn run(self) -> io::Result<()> {
        let state = self.state;
        let mut workers = Vec::new();
        for _ in 0..state.config.workers.max(1) {
            let state = Arc::clone(&state);
            // Workers run the recursive EP search, whose stack depth is
            // the explored path length — give them search-sized stacks
            // instead of the 2 MiB default.
            workers.push(
                thread::Builder::new()
                    .stack_size(qss::core::SEARCH_THREAD_STACK_BYTES)
                    .spawn(move || worker_loop(&state))
                    .expect("spawn a worker thread"),
            );
        }
        let mut connection_threads: Vec<JoinHandle<()>> = Vec::new();
        let mut accept_backoff = Duration::from_millis(10);
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => {
                    accept_backoff = Duration::from_millis(10);
                    accepted
                }
                Err(_) if state.shutdown.load(Ordering::SeqCst) => break,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // Transient accept failures — EMFILE/ENFILE when the
                    // fd table is full, ECONNRESET races, memory pressure
                    // — heal with time. Backing off keeps the daemon
                    // alive and un-pegs the CPU; existing connections are
                    // unaffected. (Before: any such error killed the
                    // accept loop and with it the whole server.)
                    thread::sleep(accept_backoff);
                    accept_backoff = (accept_backoff * 2).min(Duration::from_secs(1));
                    continue;
                }
            };
            if state.shutdown.load(Ordering::SeqCst) {
                break; // likely the wake-up connection itself
            }
            let max = state.config.max_connections;
            if max > 0 && lock(&state.connections).len() >= max {
                Counters::bump(&state.engine.counters.requests);
                Counters::bump(&state.engine.counters.busy_rejections);
                let error = WireError::new(
                    ErrorKind::Busy,
                    format!("connection limit reached ({max}); retry later"),
                );
                // Best effort, bounded: never let a rejected peer that
                // won't read stall the accept loop.
                stream.set_write_timeout(Some(Duration::from_secs(1))).ok();
                let mut stream = stream;
                let _ = write_line(&mut stream, &respond_error(&state, None, error));
                continue;
            }
            let id = state.next_connection.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                lock(&state.connections).insert(id, clone);
            }
            let state = Arc::clone(&state);
            connection_threads.push(thread::spawn(move || {
                serve_connection(&state, stream);
                lock(&state.connections).remove(&id);
            }));
            // Reap finished connection threads as we go — a long-running
            // daemon must not accumulate one JoinHandle per connection it
            // ever served (dropping a finished handle just detaches it).
            connection_threads.retain(|handle| !handle.is_finished());
        }
        // Drain: no new jobs are accepted, queued jobs finish and their
        // responses are written by the connection threads that wait on
        // them.
        state.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        // Sever only the *read* half of every connection: threads blocked
        // in `read` wake with EOF and exit, while a thread still writing
        // a drained job's response keeps its write half until it
        // finishes — the "responses are still delivered" guarantee.
        for (_, stream) in lock(&state.connections).drain() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for thread in connection_threads {
            let _ = thread.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread; the handle exposes the
    /// address and joins on shutdown. The in-process flavor used by
    /// tests and benchmarks.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Handle of a [`Server::spawn`]ed background server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (after some client sent `shutdown`).
    ///
    /// # Errors
    /// Propagates the server's exit status.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }

    /// Sends a `shutdown` request and joins the server.
    ///
    /// # Errors
    /// Propagates client and server errors.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        let mut client = Client::connect(self.addr)?;
        client
            .shutdown()
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.join()
    }
}

/// The worker loop: execute queued jobs until the queue closes. Panics
/// inside a request are contained — the client gets a typed `internal`
/// error and the worker lives on.
fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.next() {
        // A job whose deadline passed while it sat in the queue is
        // answered without running: the worker slot goes to live work.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = job.reply.send(Err(WireError::new(
                ErrorKind::Timeout,
                "request deadline expired before a worker picked it up",
            )));
            continue;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            state.engine.handle(&job.request, job.deadline)
        }))
        .unwrap_or_else(|_| {
            Err(WireError::new(
                ErrorKind::Internal,
                "request handler panicked",
            ))
        });
        let _ = job.reply.send(result);
    }
}

/// One connection: read request lines, answer each with exactly one
/// response line, in order. Protocol errors answer and continue; only
/// transport errors, EOF or an expired idle/line deadline end the loop.
///
/// The deadlines need no timer thread: when any timeout is configured,
/// the socket gets a short read timeout (the *tick*), and every tick the
/// reader's callback decides between "keep waiting" and "reap". A tick
/// with no line in progress checks the idle deadline; a tick mid-line
/// checks the line deadline — which is what stops a slowloris client
/// dribbling one byte per tick.
fn serve_connection(state: &ServerState, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(state.config.write_timeout).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // One line may dribble for at most the request timeout (or, failing
    // that, the idle timeout): a request that cannot finish arriving
    // before its processing deadline would expire is not worth waiting
    // for.
    let line_limit = state.config.request_timeout.or(state.config.idle_timeout);
    let tick_period = [state.config.request_timeout, state.config.idle_timeout]
        .into_iter()
        .flatten()
        .min()
        .map(|shortest| (shortest / 8).clamp(Duration::from_millis(5), Duration::from_millis(100)));
    if let Some(period) = tick_period {
        read_half.set_read_timeout(Some(period)).ok();
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let read = match tick_period {
            None => read_line_bounded(&mut reader, state.config.max_line_bytes),
            Some(_) => {
                let idle_deadline = state.config.idle_timeout.map(|t| Instant::now() + t);
                let mut line_deadline: Option<Instant> = None;
                let mut tick = |started: bool| {
                    let now = Instant::now();
                    if started {
                        match line_limit {
                            // The deadline is armed at the first tick
                            // that observes the line in progress.
                            Some(limit) => now < *line_deadline.get_or_insert(now + limit),
                            None => true,
                        }
                    } else {
                        idle_deadline.is_none_or(|deadline| now < deadline)
                    }
                };
                read_line_bounded_with_tick(&mut reader, state.config.max_line_bytes, &mut tick)
            }
        };
        let line = match read {
            Err(_) | Ok(LineRead::Eof) => break,
            // An idle connection was reaped or a line dribbled past its
            // deadline; either way the peer gets a clean close, and a
            // retrying client reconnects.
            Ok(LineRead::TimedOut) => break,
            Ok(LineRead::TooLarge) => {
                Counters::bump(&state.engine.counters.requests);
                let error = WireError::new(
                    ErrorKind::TooLarge,
                    format!(
                        "request line exceeds the {}-byte limit",
                        state.config.max_line_bytes
                    ),
                );
                if !write_line(&mut writer, &respond_error(state, None, error)) {
                    break;
                }
                continue;
            }
            Ok(LineRead::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        Counters::bump(&state.engine.counters.requests);
        let (id, result, is_shutdown) = process_line(state, &line);
        let text = match result {
            Ok(value) => response_ok(id, value),
            Err(error) => respond_error(state, id, error),
        };
        if !write_line(&mut writer, &text) {
            break;
        }
        if is_shutdown {
            // The acknowledgement is on the wire; now start draining.
            state.begin_shutdown();
        }
    }
}

/// Parses and executes one request line, routing pipeline work through
/// the bounded queue. Returns `(echoed id, result, shutdown?)`.
fn process_line(state: &ServerState, line: &str) -> (Option<u64>, Result<Value, WireError>, bool) {
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(error) => return (None, Err(error), false),
    };
    let id = request.id;
    match request.kind {
        // Control requests bypass the queue: they must answer promptly
        // even when the workers are saturated.
        RequestKind::Stats => (id, Ok(stats_value(state)), false),
        RequestKind::Shutdown => (
            id,
            Ok(Value::Object(vec![(
                "stopping".to_string(),
                Value::Bool(true),
            )])),
            true,
        ),
        _ => {
            if state.shutdown.load(Ordering::SeqCst) {
                return (
                    id,
                    Err(WireError::new(
                        ErrorKind::ShuttingDown,
                        "server is draining for shutdown",
                    )),
                    false,
                );
            }
            // The deadline clock starts when the request is accepted, so
            // it covers queue wait as well as the search itself.
            let deadline = state.config.request_timeout.map(|t| Instant::now() + t);
            let (reply, receiver) = mpsc::channel();
            match state.queue.submit(Job {
                request,
                deadline,
                reply,
            }) {
                Err(SubmitError::Full) => {
                    Counters::bump(&state.engine.counters.busy_rejections);
                    (
                        id,
                        Err(WireError::new(
                            ErrorKind::Busy,
                            format!(
                                "worker queue is full ({} jobs); retry later",
                                state.config.queue_capacity
                            ),
                        )),
                        false,
                    )
                }
                Err(SubmitError::Closed) => (
                    id,
                    Err(WireError::new(
                        ErrorKind::ShuttingDown,
                        "server is draining for shutdown",
                    )),
                    false,
                ),
                Ok(()) => match receiver.recv() {
                    Ok(result) => (id, result, false),
                    Err(_) => (
                        id,
                        Err(WireError::new(
                            ErrorKind::Internal,
                            "worker dropped the request",
                        )),
                        false,
                    ),
                },
            }
        }
    }
}

/// Serializes an error response, counting it (and `timeout` responses in
/// their own counter, whatever path produced them).
fn respond_error(state: &ServerState, id: Option<u64>, error: WireError) -> String {
    Counters::bump(&state.engine.counters.errors);
    if error.kind == ErrorKind::Timeout {
        Counters::bump(&state.engine.counters.timeouts);
    }
    response_error(id, &error)
}

/// Writes one response line; `false` signals a dead connection.
fn write_line(writer: &mut TcpStream, text: &str) -> bool {
    writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

/// The `stats` payload.
fn stats_value(state: &ServerState) -> Value {
    let counters = &state.engine.counters;
    let stats = ServerStats {
        requests: Counters::read(&counters.requests),
        errors: Counters::read(&counters.errors),
        busy_rejections: Counters::read(&counters.busy_rejections),
        coalesced: Counters::read(&counters.coalesced),
        timeouts: Counters::read(&counters.timeouts),
        cancelled: Counters::read(&counters.cancelled),
        workers: state.config.workers.max(1) as u64,
        queue_capacity: state.config.queue_capacity as u64,
        cache: state.engine.cache.stats(),
    };
    serde_json::to_value(&stats).expect("stats serialization is infallible")
}
