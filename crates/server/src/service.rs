//! Request execution: every wire request mapped onto the [`qss`]
//! pipeline, with the context cache and in-flight coalescing threaded
//! through the `schedule`-bearing paths.

use crate::cache::ContextCache;
use crate::coalesce::{InFlightTable, SearchKey, SharedSearch, Ticket};
use qss::remote::{fingerprint_hex, CheckSummary, ErrorKind, Request, RequestKind, WireError};
use qss::{LinkedArtifact, Pipeline, QssError, ScheduleArtifact, SearchContext, SystemSchedules};
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The protocol-visible counters (cache counters live in the cache).
#[derive(Default)]
pub(crate) struct Counters {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub busy_rejections: AtomicU64,
    pub coalesced: AtomicU64,
    pub timeouts: AtomicU64,
    pub cancelled: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Bounded FIFO cache of serialized `AnalysisReport`s, keyed by
/// `(fingerprint, ordered_digest)` — the same double guard the context
/// cache uses, since the report embeds id-indexed facts. Analysis is
/// pure and deterministic, so a hit returns bytes identical to a fresh
/// run; the `cached` flag in the response is the only difference.
pub(crate) struct ReportCache {
    entries: Mutex<VecDeque<(u64, u64, Value)>>,
    capacity: usize,
}

impl ReportCache {
    fn new(capacity: usize) -> Self {
        ReportCache {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, fingerprint: u64, digest: u64) -> Option<Value> {
        let entries = self.entries.lock().ok()?;
        entries
            .iter()
            .find(|(f, d, _)| *f == fingerprint && *d == digest)
            .map(|(_, _, v)| v.clone())
    }

    fn insert(&self, fingerprint: u64, digest: u64, report: Value) {
        let Ok(mut entries) = self.entries.lock() else {
            return;
        };
        if entries
            .iter()
            .any(|(f, d, _)| *f == fingerprint && *d == digest)
        {
            return;
        }
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back((fingerprint, digest, report));
    }
}

/// The compute side of the server: everything workers need to execute a
/// pipeline request. Shared immutably across worker threads.
pub(crate) struct Engine {
    pub cache: ContextCache,
    pub reports: ReportCache,
    pub inflight: InFlightTable,
    pub counters: Counters,
}

impl Engine {
    pub fn new(cache_capacity: usize) -> Self {
        Engine {
            cache: ContextCache::new(cache_capacity),
            reports: ReportCache::new(cache_capacity),
            inflight: InFlightTable::new(),
            counters: Counters::default(),
        }
    }

    /// Executes one pipeline request (`check` / `link` / `schedule` /
    /// `generate` / `simulate`), bounded by the request's deadline when
    /// the server runs with `--request-timeout`. Control requests
    /// (`stats`, `shutdown`) never reach the engine — the connection
    /// layer answers them without queueing.
    pub fn handle(&self, request: &Request, deadline: Option<Instant>) -> Result<Value, WireError> {
        let source = request.source.as_deref().ok_or_else(|| {
            WireError::protocol(format!("request kind `{}` needs `source`", request.kind))
        })?;
        let config = request.config.clone().unwrap_or_default();
        let linked = Pipeline::from_source(source)
            .map_err(WireError::from)?
            .with_config(config)
            .link()
            .map_err(WireError::from)?;
        let fingerprint = linked.fingerprint();
        match request.kind {
            RequestKind::Check => {
                let analysis = linked.analysis();
                let summary = CheckSummary {
                    fingerprint: fingerprint_hex(fingerprint),
                    system: linked.spec.name().to_string(),
                    processes: linked.system.process_names.len() as u64,
                    channels: linked.system.channels.len() as u64,
                    places: analysis.num_places as u64,
                    transitions: analysis.num_transitions as u64,
                    uncontrollable_inputs: analysis.num_uncontrollable_sources as u64,
                    choice_places: analysis.num_choice_places as u64,
                };
                Ok(to_value(&summary))
            }
            RequestKind::Analyze => {
                let digest = linked.ordered_digest();
                if let Some(report) = self.reports.get(fingerprint, digest) {
                    return Ok(artifact_result(fingerprint, Some(true), report));
                }
                let report = to_value(&linked.analyze());
                self.reports.insert(fingerprint, digest, report.clone());
                Ok(artifact_result(fingerprint, Some(false), report))
            }
            RequestKind::Link => Ok(artifact_result(fingerprint, None, to_value(&linked))),
            RequestKind::Schedule => {
                let (artifact, cache_hit) = self.scheduled(linked, deadline)?;
                Ok(artifact_result(
                    fingerprint,
                    Some(cache_hit),
                    to_value(&artifact),
                ))
            }
            RequestKind::Generate => {
                let (scheduled, cache_hit) = self.scheduled(linked, deadline)?;
                let task = scheduled.generate().map_err(WireError::from)?;
                Ok(artifact_result(
                    fingerprint,
                    Some(cache_hit),
                    to_value(&task),
                ))
            }
            RequestKind::Simulate => {
                let (scheduled, cache_hit) = self.scheduled(linked, deadline)?;
                let task = scheduled.generate().map_err(WireError::from)?;
                let sim = task.simulate(&request.events).map_err(WireError::from)?;
                let mut result = artifact_result(fingerprint, Some(cache_hit), to_value(&sim));
                if request.include_task {
                    // Embed the stage-3 artifact so `build --events`
                    // callers need one request, not a second full
                    // pipeline run for `generate`.
                    if let Value::Object(pairs) = &mut result {
                        pairs.push(("task".to_string(), to_value(&task)));
                    }
                }
                Ok(result)
            }
            RequestKind::Stats | RequestKind::Shutdown => Err(WireError::new(
                ErrorKind::Internal,
                "control requests must not reach the worker pool",
            )),
        }
    }

    /// Stage 2 with the service optimizations: the per-net
    /// [`SearchContext`] comes from the fingerprint-keyed cache, and
    /// concurrent searches for the same `(fingerprint, digest, config)`
    /// are coalesced into one. Returns the artifact plus whether the
    /// context was a cache hit.
    fn scheduled(
        &self,
        linked: LinkedArtifact,
        deadline: Option<Instant>,
    ) -> Result<(ScheduleArtifact, bool), WireError> {
        let fingerprint = linked.fingerprint();
        let digest = linked.ordered_digest();
        let config_json =
            serde_json::to_string(&linked.config).expect("config serialization is infallible");
        let key: SearchKey = (fingerprint, digest, config_json);
        let shared = match self.inflight.join(key) {
            Ticket::Lead(guard) => {
                let (context, cache_hit) = self.cache.get_or_build(fingerprint, digest, || {
                    SearchContext::new(&linked.system.net)
                });
                let outcome =
                    run_search(&linked, &context, deadline).map(|schedules| SharedSearch {
                        schedules: Arc::new(schedules),
                        context,
                        cache_hit,
                    });
                if matches!(&outcome, Err(e) if e.kind == ErrorKind::Timeout) {
                    // The search itself was cancelled mid-flight (as
                    // opposed to a response merely classified `timeout`).
                    Counters::bump(&self.counters.cancelled);
                }
                guard.complete(outcome.clone());
                outcome?
            }
            Ticket::Wait(flight) => {
                Counters::bump(&self.counters.coalesced);
                flight.wait_deadline(deadline)?
            }
        };
        let cache_hit = shared.cache_hit;
        let artifact =
            linked.attach_schedules((*shared.schedules).clone(), Arc::clone(&shared.context));
        Ok((artifact, cache_hit))
    }
}

/// Runs the schedule search exactly as `LinkedArtifact::schedule` would,
/// but keeps the raw [`SystemSchedules`] so coalesced followers can
/// attach them to their own artifacts. The request deadline tightens the
/// configuration's own budget; a blown budget surfaces as a `timeout`
/// wire error via `QssError::BudgetExhausted`.
fn run_search(
    linked: &LinkedArtifact,
    context: &SearchContext,
    deadline: Option<Instant>,
) -> Result<SystemSchedules, WireError> {
    let budget = linked.config.budget.to_budget().and_deadline(deadline);
    let result = if linked.config.parallel_schedule {
        qss::core::schedule_system_parallel_with_context_budgeted(
            &linked.system,
            context,
            &linked.config.schedule,
            &budget,
        )
    } else {
        qss::core::schedule_system_with_context_budgeted(
            &linked.system,
            context,
            &linked.config.schedule,
            &budget,
        )
    };
    result.map_err(|e| WireError::from(QssError::from(e)))
}

/// `{"fingerprint": ..., ["cached": ...,] "artifact": ...}`.
fn artifact_result(fingerprint: u64, cached: Option<bool>, artifact: Value) -> Value {
    let mut pairs = vec![(
        "fingerprint".to_string(),
        Value::String(fingerprint_hex(fingerprint)),
    )];
    if let Some(cached) = cached {
        pairs.push(("cached".to_string(), Value::Bool(cached)));
    }
    pairs.push(("artifact".to_string(), artifact));
    Value::Object(pairs)
}

fn to_value<T: serde::Serialize>(value: &T) -> Value {
    serde_json::to_value(value).expect("artifact serialization is infallible")
}
