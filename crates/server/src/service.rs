//! Request execution: every wire request mapped onto the [`qss`]
//! pipeline, with the context cache and in-flight coalescing threaded
//! through the `schedule`-bearing paths.
//!
//! The engine is **completion-based**: [`Engine::handle`] takes a reply
//! callback instead of returning a value, because schedule-bearing
//! requests finish on a different thread than they start on. A worker
//! does only fast admission work (parse, link, cache lookups); the EP
//! search itself runs on a dedicated search thread gated by a slot
//! semaphore sized to the worker count, and coalesced followers park a
//! continuation on the leader's flight — neither holds a worker while it
//! waits. The reply callback posts the finished response back to the
//! connection core's event loop.

use crate::cache::ContextCache;
use crate::coalesce::{InFlightTable, SearchKey, SearchOutcome, SharedSearch, Ticket};
use crate::util::lock;
use qss::remote::{fingerprint_hex, CheckSummary, ErrorKind, Request, RequestKind, WireError};
use qss::{LinkedArtifact, Pipeline, QssError, SearchContext, SystemSchedules};
use qss_obs::{Counter, Observer, SpanId};
use serde_json::Value;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// How a finished response travels back to the connection core. Called
/// exactly once, possibly from a worker, a search thread, or (for
/// coalesced followers) the leader's search thread.
pub(crate) type Reply = Box<dyn FnOnce(Result<Value, WireError>) + Send>;

/// The protocol-visible counters (cache counters live in the caches).
///
/// Every field is a [`qss_obs::Counter`] — a shareable cell the armed
/// [`Observer`] registry *adopts* (see [`Counters::adopt_into`]), so the
/// `stats` payload and the `metrics` registry read the very same cells:
/// one source of truth, two views.
#[derive(Default)]
pub(crate) struct Counters {
    pub requests: Counter,
    pub responses: Counter,
    pub errors: Counter,
    pub busy_rejections: Counter,
    pub coalesced: Counter,
    pub timeouts: Counter,
    pub cancelled: Counter,
    /// Schedule searches actually spawned; coalesced followers share
    /// their leader's search, so this lags `requests` under duplicate
    /// load — the service's whole point.
    pub searches: Counter,
    /// Event-loop wake-ups via the self-pipe.
    pub wakeups: Counter,
    /// Reads that left a partial request line in the buffer.
    pub partial_reads: Counter,
    /// Flushes that left unwritten response bytes behind (socket full).
    pub partial_writes: Counter,
    /// Responses held back for v1 in-order delivery.
    pub held_responses: Counter,
}

impl Counters {
    /// Registers every counter cell with the observer's registry.
    pub fn adopt_into(&self, observer: &Observer) {
        observer.adopt_counter("requests", &self.requests);
        observer.adopt_counter("responses", &self.responses);
        observer.adopt_counter("errors", &self.errors);
        observer.adopt_counter("busy_rejections", &self.busy_rejections);
        observer.adopt_counter("coalesced", &self.coalesced);
        observer.adopt_counter("timeouts", &self.timeouts);
        observer.adopt_counter("cancelled", &self.cancelled);
        observer.adopt_counter("searches", &self.searches);
        observer.adopt_counter("loop.wakeups", &self.wakeups);
        observer.adopt_counter("loop.partial_reads", &self.partial_reads);
        observer.adopt_counter("loop.partial_writes", &self.partial_writes);
        observer.adopt_counter("loop.held_responses", &self.held_responses);
    }
}

/// Bounded LRU cache of serialized `AnalysisReport`s, keyed by
/// `(fingerprint, ordered_digest)` — the same double guard the context
/// cache uses, since the report embeds id-indexed facts. Analysis is
/// pure and deterministic, so a hit returns bytes identical to a fresh
/// run; the `cached` flag in the response is the only difference.
///
/// Recency is tracked with a monotonic tick stamped on every `get` and
/// `insert` (the same scheme [`ContextCache`] uses): a hit refreshes the
/// entry, eviction removes the smallest tick. Locking goes through
/// [`crate::util::lock`], which shrugs off poisoning — a panic elsewhere
/// must degrade one request, not silently turn the cache into a
/// permanent miss.
pub(crate) struct ReportCache {
    state: Mutex<ReportCacheState>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

struct ReportCacheState {
    entries: HashMap<(u64, u64), (Value, u64)>,
    tick: u64,
}

impl ReportCache {
    fn new(capacity: usize) -> Self {
        ReportCache {
            state: Mutex::new(ReportCacheState {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Registers the cache's counter cells with the observer's registry.
    fn adopt_into(&self, observer: &Observer) {
        observer.adopt_counter("report_cache.hits", &self.hits);
        observer.adopt_counter("report_cache.misses", &self.misses);
        observer.adopt_counter("report_cache.evictions", &self.evictions);
    }

    fn get(&self, fingerprint: u64, digest: u64) -> Option<Value> {
        let mut state = lock(&self.state);
        state.tick += 1;
        let tick = state.tick;
        let Some((report, stamp)) = state.entries.get_mut(&(fingerprint, digest)) else {
            self.misses.inc();
            return None;
        };
        *stamp = tick;
        self.hits.inc();
        Some(report.clone())
    }

    fn insert(&self, fingerprint: u64, digest: u64, report: Value) {
        let mut state = lock(&self.state);
        state.tick += 1;
        let tick = state.tick;
        if state.entries.contains_key(&(fingerprint, digest)) {
            return;
        }
        if state.entries.len() >= self.capacity {
            let oldest = state
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(key, _)| *key);
            if let Some(key) = oldest {
                state.entries.remove(&key);
                self.evictions.inc();
            }
        }
        state.entries.insert((fingerprint, digest), (report, tick));
    }
}

/// A counting semaphore bounding concurrently running schedule searches
/// to the worker count: admission stays responsive (workers are never
/// consumed by searches), while search parallelism keeps the same bound
/// it had when searches ran *on* the workers.
struct SearchSlots {
    capacity: usize,
    available: AtomicUsize,
}

impl SearchSlots {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SearchSlots {
            capacity,
            available: AtomicUsize::new(capacity),
        })
    }

    /// Takes a slot if one is free; never blocks. The permit returns the
    /// slot when dropped.
    fn try_acquire(self: &Arc<Self>) -> Option<SlotPermit> {
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                return None;
            }
            match self.available.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(SlotPermit(Arc::clone(self))),
                Err(observed) => current = observed,
            }
        }
    }
}

struct SlotPermit(Arc<SearchSlots>);

impl Drop for SlotPermit {
    fn drop(&mut self) {
        self.0.available.fetch_add(1, Ordering::Release);
    }
}

/// The compute side of the server: everything workers need to execute a
/// pipeline request. Shared behind an [`Arc`] across worker and search
/// threads.
pub(crate) struct Engine {
    pub cache: ContextCache,
    pub reports: ReportCache,
    pub inflight: Arc<InFlightTable>,
    pub counters: Counters,
    /// The one observability handle: counters, latency histograms and
    /// the span journal all hang off it. A disabled observer turns every
    /// recording site into a single-branch no-op.
    pub observer: Observer,
    slots: Arc<SearchSlots>,
    /// Live search threads, pruned opportunistically and joined at
    /// shutdown so a drain never abandons a running search.
    search_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    pub fn new(cache_capacity: usize, workers: usize, observer: Observer) -> Self {
        let engine = Engine {
            cache: ContextCache::new(cache_capacity),
            reports: ReportCache::new(cache_capacity),
            inflight: Arc::new(InFlightTable::new()),
            counters: Counters::default(),
            observer,
            slots: SearchSlots::new(workers.max(1)),
            search_threads: Mutex::new(Vec::new()),
        };
        // Adopt every counter cell into the registry: `stats` (which
        // reads the structs) and `metrics` (which reads the registry)
        // are two views of the same cells.
        engine.counters.adopt_into(&engine.observer);
        engine.cache.adopt_into(&engine.observer);
        engine.reports.adopt_into(&engine.observer);
        engine
    }

    /// Executes one pipeline request (`check` / `analyze` / `link` /
    /// `schedule` / `generate` / `simulate`), bounded by the request's
    /// deadline when the server runs with `--request-timeout`, and
    /// delivers the result through `reply` — inline for the fast kinds,
    /// from a search thread for the schedule-bearing ones. Control
    /// requests (`stats`, `shutdown`) never reach the engine — the
    /// connection layer answers them without queueing.
    pub fn handle(
        self: &Arc<Self>,
        request: Request,
        deadline: Option<Instant>,
        span: SpanId,
        reply: Reply,
    ) {
        let source = match request.source.as_deref() {
            Some(source) => source,
            None => {
                return reply(Err(WireError::protocol(format!(
                    "request kind `{}` needs `source`",
                    request.kind
                ))))
            }
        };
        let config = request.config.clone().unwrap_or_default();
        let admit = self.observer.span_begin("admit", span, "worker");
        let linked = Pipeline::from_source(source)
            .map_err(WireError::from)
            .and_then(|p| p.with_config(config).link().map_err(WireError::from));
        self.observer.span_end(admit, "admit", "worker");
        let linked = match linked {
            Ok(linked) => linked,
            Err(error) => return reply(Err(error)),
        };
        let fingerprint = linked.fingerprint();
        match request.kind {
            RequestKind::Check => {
                let analysis = linked.analysis();
                let summary = CheckSummary {
                    fingerprint: fingerprint_hex(fingerprint),
                    system: linked.spec.name().to_string(),
                    processes: linked.system.process_names.len() as u64,
                    channels: linked.system.channels.len() as u64,
                    places: analysis.num_places as u64,
                    transitions: analysis.num_transitions as u64,
                    uncontrollable_inputs: analysis.num_uncontrollable_sources as u64,
                    choice_places: analysis.num_choice_places as u64,
                };
                reply(Ok(to_value(&summary)));
            }
            RequestKind::Analyze => {
                let digest = linked.ordered_digest();
                if let Some(report) = self.reports.get(fingerprint, digest) {
                    return reply(Ok(artifact_result(fingerprint, Some(true), report)));
                }
                let report = to_value(&linked.analyze());
                self.reports.insert(fingerprint, digest, report.clone());
                reply(Ok(artifact_result(fingerprint, Some(false), report)));
            }
            RequestKind::Link => {
                reply(Ok(artifact_result(fingerprint, None, to_value(&linked))));
            }
            RequestKind::Schedule | RequestKind::Generate | RequestKind::Simulate => {
                self.scheduled(linked, request, deadline, span, reply);
            }
            RequestKind::Stats | RequestKind::Metrics | RequestKind::Shutdown => {
                reply(Err(WireError::new(
                    ErrorKind::Internal,
                    "control requests must not reach the worker pool",
                )))
            }
        }
    }

    /// Stage 2 with the service optimizations: the per-net
    /// [`SearchContext`] comes from the fingerprint-keyed cache,
    /// concurrent searches for the same `(fingerprint, digest, config)`
    /// are coalesced into one, and the search itself runs on a dedicated
    /// thread — the calling worker returns immediately.
    fn scheduled(
        self: &Arc<Self>,
        linked: LinkedArtifact,
        request: Request,
        deadline: Option<Instant>,
        span: SpanId,
        reply: Reply,
    ) {
        let fingerprint = linked.fingerprint();
        let digest = linked.ordered_digest();
        let config_json =
            serde_json::to_string(&linked.config).expect("config serialization is infallible");
        let key: SearchKey = (fingerprint, digest, config_json);
        match self.inflight.join(key) {
            Ticket::Wait(flight) => {
                // A leader is already searching: park the continuation on
                // its flight. No thread, no worker slot, no search slot —
                // the whole wait lives in this closure.
                self.counters.coalesced.inc();
                let observer = self.observer.clone();
                let wait = observer.span_begin("coalesced_wait", span, "worker");
                flight.subscribe(Box::new(move |outcome| {
                    observer.span_end(wait, "coalesced_wait", "search");
                    reply(finish(linked, &request, outcome.clone()));
                }));
            }
            Ticket::Lead(guard) => {
                let Some(permit) = self.slots.try_acquire() else {
                    // Every search slot is taken by a *different* search
                    // (duplicates would have coalesced above): shed load
                    // with the same typed `busy` the full queue uses.
                    self.counters.busy_rejections.inc();
                    let busy = WireError::new(
                        ErrorKind::Busy,
                        format!(
                            "all {} schedule-search slots are busy; retry later",
                            self.slots.capacity
                        ),
                    );
                    guard.complete(Err(busy.clone()));
                    return reply(Err(busy));
                };
                self.counters.searches.inc();
                self.spawn_search(guard, permit, linked, request, deadline, span, reply);
            }
        }
    }

    /// Runs the leader's search on a dedicated thread: searches must not
    /// occupy workers (admission stays live while every slot is
    /// searching), and the recursive EP search needs a search-sized
    /// stack. Publishes to the flight, then assembles the leader's own
    /// response.
    #[allow(clippy::too_many_arguments)]
    fn spawn_search(
        self: &Arc<Self>,
        guard: crate::coalesce::LeaderGuard,
        permit: SlotPermit,
        linked: LinkedArtifact,
        request: Request,
        deadline: Option<Instant>,
        span: SpanId,
        reply: Reply,
    ) {
        let engine = Arc::clone(self);
        let search_span = self.observer.span_begin("search", span, "worker");
        // Keep one handle on the reply so a failed thread spawn can still
        // answer the request instead of stranding the connection.
        let shared_reply = Arc::new(Mutex::new(Some(reply)));
        let thread_reply = Arc::clone(&shared_reply);
        let spawned = thread::Builder::new()
            .name("qssd-search".to_string())
            .stack_size(qss::core::SEARCH_THREAD_STACK_BYTES)
            .spawn(move || {
                // A panicking search must still answer: the guard (moved
                // into the closure) publishes an internal error to the
                // followers on unwind, and the fallback below answers the
                // leader.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let (context, cache_hit) = engine.cache.get_or_build(
                        linked.fingerprint(),
                        linked.ordered_digest(),
                        || SearchContext::new(&linked.system.net),
                    );
                    let outcome =
                        run_search(&linked, &context, deadline).map(|schedules| SharedSearch {
                            schedules: Arc::new(schedules),
                            context,
                            cache_hit,
                        });
                    if matches!(&outcome, Err(e) if e.kind == ErrorKind::Timeout) {
                        // The search itself was cancelled mid-flight (as
                        // opposed to a response merely classified
                        // `timeout`).
                        engine.counters.cancelled.inc();
                    }
                    engine.observer.span_end(search_span, "search", "search");
                    guard.complete(outcome.clone());
                    // The slot frees the moment the search is decided:
                    // assembling the response (the generate/simulate
                    // stages) must not make the next schedule see
                    // `busy`, nor may the gap between this thread's
                    // reply and its exit.
                    drop(permit);
                    finish(linked, &request, outcome)
                }))
                .unwrap_or_else(|_| {
                    Err(WireError::new(
                        ErrorKind::Internal,
                        "the schedule search panicked",
                    ))
                });
                if let Some(reply) = lock(&thread_reply).take() {
                    reply(result);
                }
            });
        match spawned {
            Ok(handle) => self.track_search(handle),
            Err(_) => {
                // Spawn failure dropped the closure, and with it the
                // guard (followers got their internal error); answer the
                // leader through the retained reply handle.
                if let Some(reply) = lock(&shared_reply).take() {
                    reply(Err(WireError::new(
                        ErrorKind::Internal,
                        "could not spawn a search thread",
                    )));
                }
            }
        }
    }

    fn track_search(&self, handle: JoinHandle<()>) {
        let mut threads = lock(&self.search_threads);
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
    }

    /// Joins every live search thread; the shutdown drain calls this so
    /// in-flight searches publish their results (and those results are
    /// written) before the process exits.
    pub fn join_searches(&self) {
        let threads: Vec<_> = lock(&self.search_threads).drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// Assembles a schedule-bearing response from the shared search outcome:
/// attach the schedules to this request's own linked artifact, then run
/// the remaining stages the request kind asks for. Runs on the leader's
/// search thread — for the leader itself and for every parked follower.
fn finish(
    linked: LinkedArtifact,
    request: &Request,
    outcome: SearchOutcome,
) -> Result<Value, WireError> {
    let shared = outcome?;
    let fingerprint = linked.fingerprint();
    let cache_hit = shared.cache_hit;
    let artifact =
        linked.attach_schedules((*shared.schedules).clone(), Arc::clone(&shared.context));
    match request.kind {
        RequestKind::Schedule => Ok(artifact_result(
            fingerprint,
            Some(cache_hit),
            to_value(&artifact),
        )),
        RequestKind::Generate => {
            let task = artifact.generate().map_err(WireError::from)?;
            Ok(artifact_result(
                fingerprint,
                Some(cache_hit),
                to_value(&task),
            ))
        }
        RequestKind::Simulate => {
            let task = artifact.generate().map_err(WireError::from)?;
            let sim = task.simulate(&request.events).map_err(WireError::from)?;
            let mut result = artifact_result(fingerprint, Some(cache_hit), to_value(&sim));
            if request.include_task {
                // Embed the stage-3 artifact so `build --events` callers
                // need one request, not a second full pipeline run for
                // `generate`.
                if let Value::Object(pairs) = &mut result {
                    pairs.push(("task".to_string(), to_value(&task)));
                }
            }
            Ok(result)
        }
        _ => Err(WireError::new(
            ErrorKind::Internal,
            "finish invoked on a non-schedule request kind",
        )),
    }
}

/// Runs the schedule search exactly as `LinkedArtifact::schedule` would,
/// but keeps the raw [`SystemSchedules`] so coalesced followers can
/// attach them to their own artifacts. The request deadline tightens the
/// configuration's own budget; a blown budget surfaces as a `timeout`
/// wire error via `QssError::BudgetExhausted`.
fn run_search(
    linked: &LinkedArtifact,
    context: &SearchContext,
    deadline: Option<Instant>,
) -> Result<SystemSchedules, WireError> {
    let budget = linked.config.budget.to_budget().and_deadline(deadline);
    let result = if linked.config.parallel_schedule {
        qss::core::schedule_system_parallel_with_context_budgeted(
            &linked.system,
            context,
            &linked.config.schedule,
            &budget,
        )
    } else {
        qss::core::schedule_system_with_context_budgeted(
            &linked.system,
            context,
            &linked.config.schedule,
            &budget,
        )
    };
    result.map_err(|e| WireError::from(QssError::from(e)))
}

/// `{"fingerprint": ..., ["cached": ...,] "artifact": ...}`.
fn artifact_result(fingerprint: u64, cached: Option<bool>, artifact: Value) -> Value {
    let mut pairs = vec![(
        "fingerprint".to_string(),
        Value::String(fingerprint_hex(fingerprint)),
    )];
    if let Some(cached) = cached {
        pairs.push(("cached".to_string(), Value::Bool(cached)));
    }
    pairs.push(("artifact".to_string(), artifact));
    Value::Object(pairs)
}

fn to_value<T: serde::Serialize>(value: &T) -> Value {
    serde_json::to_value(value).expect("artifact serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> Value {
        Value::String(format!("report-{n}"))
    }

    #[test]
    fn report_cache_hits_refresh_recency() {
        let cache = ReportCache::new(2);
        cache.insert(1, 1, entry(1));
        cache.insert(2, 2, entry(2));
        // Touch the older entry: it becomes the most recent.
        assert_eq!(cache.get(1, 1), Some(entry(1)));
        // Inserting over capacity now evicts (2, 2), not (1, 1).
        cache.insert(3, 3, entry(3));
        assert_eq!(cache.get(1, 1), Some(entry(1)));
        assert_eq!(cache.get(2, 2), None);
        assert_eq!(cache.get(3, 3), Some(entry(3)));
    }

    #[test]
    fn report_cache_keys_on_both_fingerprint_and_digest() {
        let cache = ReportCache::new(4);
        cache.insert(1, 1, entry(1));
        assert_eq!(cache.get(1, 2), None);
        assert_eq!(cache.get(2, 1), None);
        assert_eq!(cache.get(1, 1), Some(entry(1)));
    }

    #[test]
    fn a_poisoned_lock_is_not_a_permanent_cache_miss() {
        let cache = Arc::new(ReportCache::new(2));
        cache.insert(1, 1, entry(1));
        // Poison the mutex: a thread panics while holding the lock.
        let poisoner = Arc::clone(&cache);
        let _ = thread::spawn(move || {
            let _guard = poisoner.state.lock();
            panic!("poison the report cache lock");
        })
        .join();
        // The cache shrugs it off: hits still hit, inserts still land.
        // (This was a real bug: `lock().ok()?` silently disabled the
        // cache forever after any such panic.)
        assert_eq!(cache.get(1, 1), Some(entry(1)));
        cache.insert(2, 2, entry(2));
        assert_eq!(cache.get(2, 2), Some(entry(2)));
    }

    #[test]
    fn search_slots_are_a_counting_semaphore() {
        let slots = SearchSlots::new(2);
        let a = slots.try_acquire().expect("slot 1");
        let b = slots.try_acquire().expect("slot 2");
        assert!(slots.try_acquire().is_none(), "capacity 2 means 2 permits");
        drop(a);
        let c = slots.try_acquire().expect("released slot is reusable");
        drop(b);
        drop(c);
        assert_eq!(slots.available.load(Ordering::Relaxed), 2);
    }
}
