//! The bounded job queue behind the fixed worker pool.
//!
//! Connection threads do only protocol work (framing, parsing, control
//! requests); everything that runs the pipeline is submitted here and
//! executed by a fixed number of worker threads. The queue is bounded:
//! when it is full, [`JobQueue::submit`] fails *immediately* and the
//! connection layer answers with a typed `busy` error instead of letting
//! an overloaded server accumulate unbounded work — clients get explicit
//! backpressure they can retry on.

use crate::util::lock;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The queue is at capacity — backpressure, retry later.
    Full,
    /// The queue is closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    open: bool,
}

/// A multi-producer multi-consumer FIFO with a hard capacity bound.
pub(crate) struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `job`, failing fast when full or closed.
    pub fn submit(&self, job: T) -> Result<(), SubmitError> {
        let mut inner = lock(&self.inner);
        if !inner.open {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        inner.jobs.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained (the workers' signal to exit — queued work is always
    /// finished before shutdown completes).
    pub fn next(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the intake. Already-queued jobs still drain via
    /// [`JobQueue::next`].
    pub fn close(&self) {
        lock(&self.inner).open = false;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.submit(1), Ok(()));
        assert_eq!(queue.submit(2), Ok(()));
        assert_eq!(queue.submit(3), Err(SubmitError::Full));
        // Draining one slot re-opens the intake.
        assert_eq!(queue.next(), Some(1));
        assert_eq!(queue.submit(3), Ok(()));
    }

    #[test]
    fn close_drains_queued_work_then_stops_workers() {
        let queue = Arc::new(JobQueue::new(8));
        queue.submit(10).unwrap();
        queue.submit(11).unwrap();
        queue.close();
        assert_eq!(queue.submit(12), Err(SubmitError::Closed));
        // Queued jobs still come out, then the queue reports exhaustion.
        assert_eq!(queue.next(), Some(10));
        assert_eq!(queue.next(), Some(11));
        assert_eq!(queue.next(), None);
    }

    #[test]
    fn blocked_workers_wake_on_submit_and_on_close() {
        let queue = Arc::new(JobQueue::<u32>::new(8));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.next())
        };
        queue.submit(5).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(5));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.next())
        };
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
