//! In-flight coalescing of schedule searches.
//!
//! When several concurrent requests ask to schedule the same net under
//! the same configuration, running the EP search once is enough: the
//! first request becomes the *leader* and runs the search, every
//! concurrent duplicate becomes a *follower* that subscribes to the
//! leader's [`Flight`] and receives the shared result. The table key is
//! `(fingerprint, ordered digest, canonical config JSON)` — exactly the
//! inputs the search result depends on (the FlowC source text itself does
//! *not* enter the key: requests whose sources link to the same net share
//! the search and attach the shared [`SystemSchedules`] to their own
//! artifacts).
//!
//! Completion is **callback-style**, not blocking: a follower leaves a
//! continuation via [`Flight::subscribe`] and holds no thread while it
//! waits — which is what lets the server park coalesced followers on the
//! event loop instead of burning worker-pool slots on them. When the
//! leader publishes, every parked continuation runs on the publishing
//! thread (each contained by `catch_unwind`, so one panicking follower
//! cannot strand its siblings).
//!
//! The leader holds a [`LeaderGuard`]; if it fails to publish a result —
//! including by panicking — the guard's `Drop` publishes an internal
//! error, so followers can never be stranded on a dead flight.

use crate::util::lock;
use qss::remote::{ErrorKind, WireError};
use qss::{SearchContext, SystemSchedules};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// The key a search is coalesced under.
pub(crate) type SearchKey = (u64, u64, String);

/// The shared result of one coalesced search: the schedules plus the
/// context they were computed with (so followers can assemble full
/// `ScheduleArtifact`s) and whether the leader's context came from the
/// cache.
#[derive(Clone, Debug)]
pub(crate) struct SharedSearch {
    pub schedules: Arc<SystemSchedules>,
    pub context: Arc<SearchContext>,
    pub cache_hit: bool,
}

pub(crate) type SearchOutcome = Result<SharedSearch, WireError>;

/// A follower's parked continuation.
type Waiter = Box<dyn FnOnce(&SearchOutcome) + Send>;

struct FlightState {
    outcome: Option<SearchOutcome>,
    waiters: Vec<Waiter>,
}

/// One running search and its rendezvous point.
pub(crate) struct Flight {
    state: Mutex<FlightState>,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState {
                outcome: None,
                waiters: Vec::new(),
            }),
        }
    }

    /// Leaves a continuation to run when the leader publishes. If the
    /// outcome is already in, the continuation runs immediately on the
    /// calling thread; otherwise it runs later on the publishing thread.
    /// Either way it runs exactly once.
    pub fn subscribe(&self, waiter: Waiter) {
        let ready = {
            let mut state = lock(&self.state);
            match &state.outcome {
                Some(outcome) => Some(outcome.clone()),
                None => {
                    state.waiters.push(waiter);
                    return;
                }
            }
        };
        if let Some(outcome) = ready {
            run_waiter(waiter, &outcome);
        }
    }

    fn publish(&self, outcome: SearchOutcome) {
        let waiters = {
            let mut state = lock(&self.state);
            if state.outcome.is_none() {
                state.outcome = Some(outcome.clone());
            }
            std::mem::take(&mut state.waiters)
        };
        for waiter in waiters {
            run_waiter(waiter, &outcome);
        }
    }
}

/// Runs one continuation, containing its panics: a follower that blows
/// up while assembling its artifact must not take the publishing thread
/// (and every later sibling) down with it.
fn run_waiter(waiter: Waiter, outcome: &SearchOutcome) {
    let _ = catch_unwind(AssertUnwindSafe(|| waiter(outcome)));
}

/// What [`InFlightTable::join`] hands back: run the search, or subscribe
/// to whoever is already running it.
pub(crate) enum Ticket {
    /// This request runs the search and must complete the guard.
    Lead(LeaderGuard),
    /// A leader is already searching; subscribe to its flight.
    Wait(Arc<Flight>),
}

/// The table of currently running searches. `join` takes an `Arc`ed
/// table so the leader's guard can move onto its dedicated search
/// thread.
#[derive(Default)]
pub(crate) struct InFlightTable {
    flights: Mutex<HashMap<SearchKey, Arc<Flight>>>,
}

impl InFlightTable {
    pub fn new() -> Self {
        InFlightTable::default()
    }

    /// Joins the search for `key`: the first caller leads, concurrent
    /// duplicates wait.
    pub fn join(self: &Arc<Self>, key: SearchKey) -> Ticket {
        let mut flights = lock(&self.flights);
        if let Some(flight) = flights.get(&key) {
            return Ticket::Wait(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key.clone(), Arc::clone(&flight));
        Ticket::Lead(LeaderGuard {
            table: Arc::clone(self),
            key,
            flight,
            completed: false,
        })
    }

    /// Removes a finished flight so later requests start fresh searches
    /// (they will hit the context cache instead).
    fn retire(&self, key: &SearchKey) {
        lock(&self.flights).remove(key);
    }
}

/// The leader's obligation to publish. Dropping the guard without calling
/// [`LeaderGuard::complete`] — e.g. because the search panicked —
/// publishes an internal error to the followers.
pub(crate) struct LeaderGuard {
    table: Arc<InFlightTable>,
    key: SearchKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeaderGuard {
    /// Publishes the outcome to every follower (their continuations run
    /// on this thread) and retires the flight.
    pub fn complete(mut self, outcome: SearchOutcome) {
        self.completed = true;
        self.table.retire(&self.key);
        self.flight.publish(outcome);
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.table.retire(&self.key);
            self.flight.publish(Err(WireError::new(
                ErrorKind::Internal,
                "the leading search of this coalesced request failed abruptly",
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss::petri::{NetBuilder, TransitionKind};
    use std::sync::mpsc;

    fn shared_search() -> SharedSearch {
        let mut b = NetBuilder::new("t");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 1);
        let net = b.build().unwrap();
        let context = Arc::new(SearchContext::new(&net));
        let source = net.transition_by_name("in").unwrap();
        let schedule = context
            .find_schedule(&net, source, &qss::ScheduleOptions::default())
            .unwrap();
        SharedSearch {
            schedules: Arc::new(SystemSchedules {
                schedules: vec![schedule],
                channel_bounds: Default::default(),
                stats: vec![],
            }),
            context,
            cache_hit: false,
        }
    }

    fn key(n: u64) -> SearchKey {
        (n, n, "config".to_string())
    }

    /// Subscribes a channel-backed waiter and returns its receiver.
    fn subscribe_channel(flight: &Flight) -> mpsc::Receiver<SearchOutcome> {
        let (tx, rx) = mpsc::channel();
        flight.subscribe(Box::new(move |outcome| {
            let _ = tx.send(outcome.clone());
        }));
        rx
    }

    #[test]
    fn parked_followers_receive_the_leaders_result_without_threads() {
        let table = Arc::new(InFlightTable::new());
        let Ticket::Lead(guard) = table.join(key(1)) else {
            panic!("first join must lead");
        };
        // Concurrent duplicates park continuations — no waiting threads.
        let receivers: Vec<_> = (0..4)
            .map(|_| {
                let Ticket::Wait(flight) = table.join(key(1)) else {
                    panic!("duplicate join must wait");
                };
                subscribe_channel(&flight)
            })
            .collect();
        for rx in &receivers {
            assert!(
                rx.try_recv().is_err(),
                "no continuation may run before the leader publishes"
            );
        }
        let shared = shared_search();
        guard.complete(Ok(shared.clone()));
        for rx in receivers {
            let outcome = rx
                .try_recv()
                .expect("publish ran the continuation")
                .unwrap();
            assert!(Arc::ptr_eq(&outcome.schedules, &shared.schedules));
            assert!(Arc::ptr_eq(&outcome.context, &shared.context));
        }
        // The flight retired: the next join leads a fresh search.
        assert!(matches!(table.join(key(1)), Ticket::Lead(_)));
    }

    #[test]
    fn late_subscribers_run_immediately_on_a_completed_flight() {
        let table = Arc::new(InFlightTable::new());
        let Ticket::Lead(guard) = table.join(key(3)) else {
            panic!("first join must lead");
        };
        let Ticket::Wait(flight) = table.join(key(3)) else {
            panic!("duplicate join must wait");
        };
        guard.complete(Ok(shared_search()));
        // The flight already published: the continuation runs inline.
        let rx = subscribe_channel(&flight);
        assert!(rx.try_recv().expect("inline run").is_ok());
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table = Arc::new(InFlightTable::new());
        let _lead_a = table.join(key(1));
        assert!(matches!(table.join(key(2)), Ticket::Lead(_)));
        assert!(matches!(
            table.join((1, 1, "other-config".into())),
            Ticket::Lead(_)
        ));
    }

    #[test]
    fn dropped_leader_strands_no_followers() {
        let table = Arc::new(InFlightTable::new());
        let guard = match table.join(key(7)) {
            Ticket::Lead(guard) => guard,
            Ticket::Wait(_) => panic!("first join must lead"),
        };
        let Ticket::Wait(flight) = table.join(key(7)) else {
            panic!("duplicate join must wait");
        };
        let rx = subscribe_channel(&flight);
        drop(guard); // leader "panicked"
        let outcome = rx.try_recv().expect("drop published");
        assert_eq!(outcome.unwrap_err().kind, ErrorKind::Internal);
        assert!(matches!(table.join(key(7)), Ticket::Lead(_)));
    }

    #[test]
    fn a_panicking_follower_does_not_strand_its_siblings() {
        let table = Arc::new(InFlightTable::new());
        let Ticket::Lead(guard) = table.join(key(9)) else {
            panic!("first join must lead");
        };
        let Ticket::Wait(flight) = table.join(key(9)) else {
            panic!("duplicate join must wait");
        };
        flight.subscribe(Box::new(|_| panic!("hostile continuation")));
        let rx = subscribe_channel(&flight);
        guard.complete(Ok(shared_search()));
        assert!(
            rx.try_recv().expect("sibling still ran").is_ok(),
            "the panicking waiter must not stop the publish loop"
        );
    }
}
