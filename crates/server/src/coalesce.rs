//! In-flight coalescing of schedule searches.
//!
//! When several concurrent requests ask to schedule the same net under
//! the same configuration, running the EP search once is enough: the
//! first request becomes the *leader* and runs the search, every
//! concurrent duplicate becomes a *follower* that blocks on the leader's
//! [`Flight`] and receives the shared result. The table key is
//! `(fingerprint, ordered digest, canonical config JSON)` — exactly the
//! inputs the search result depends on (the FlowC source text itself does
//! *not* enter the key: requests whose sources link to the same net share
//! the search and attach the shared [`SystemSchedules`] to their own
//! artifacts).
//!
//! The leader holds a [`LeaderGuard`]; if it fails to publish a result —
//! including by panicking — the guard's `Drop` publishes an internal
//! error, so followers can never be stranded on a dead flight.

use crate::util::lock;
use qss::remote::{ErrorKind, WireError};
use qss::{SearchContext, SystemSchedules};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The key a search is coalesced under.
pub(crate) type SearchKey = (u64, u64, String);

/// The shared result of one coalesced search: the schedules plus the
/// context they were computed with (so followers can assemble full
/// `ScheduleArtifact`s) and whether the leader's context came from the
/// cache.
#[derive(Clone, Debug)]
pub(crate) struct SharedSearch {
    pub schedules: Arc<SystemSchedules>,
    pub context: Arc<SearchContext>,
    pub cache_hit: bool,
}

pub(crate) type SearchOutcome = Result<SharedSearch, WireError>;

/// One running search and its rendezvous point.
pub(crate) struct Flight {
    slot: Mutex<Option<SearchOutcome>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes, then returns a copy of the
    /// outcome. (The service always waits with a deadline slot — this
    /// plain form keeps the unit tests honest about the no-deadline
    /// path.)
    #[cfg(test)]
    pub fn wait(&self) -> SearchOutcome {
        self.wait_deadline(None)
    }

    /// Like [`Flight::wait`], but gives up at `deadline` with a typed
    /// `timeout` error — a follower whose own request deadline is
    /// tighter than the leader's must not outwait it.
    pub fn wait_deadline(&self, deadline: Option<Instant>) -> SearchOutcome {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            match deadline {
                None => {
                    slot = self
                        .done
                        .wait(slot)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(WireError::new(
                            ErrorKind::Timeout,
                            "coalesced schedule search exceeded the request deadline",
                        ));
                    }
                    slot = self
                        .done
                        .wait_timeout(slot, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0;
                }
            }
        }
    }

    fn publish(&self, outcome: SearchOutcome) {
        let mut slot = lock(&self.slot);
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.done.notify_all();
    }
}

/// What [`InFlightTable::join`] hands back: run the search, or wait for
/// whoever is already running it.
pub(crate) enum Ticket<'a> {
    /// This request runs the search and must complete the guard.
    Lead(LeaderGuard<'a>),
    /// A leader is already searching; wait on its flight.
    Wait(Arc<Flight>),
}

/// The table of currently running searches.
#[derive(Default)]
pub(crate) struct InFlightTable {
    flights: Mutex<HashMap<SearchKey, Arc<Flight>>>,
}

impl InFlightTable {
    pub fn new() -> Self {
        InFlightTable::default()
    }

    /// Joins the search for `key`: the first caller leads, concurrent
    /// duplicates wait.
    pub fn join(&self, key: SearchKey) -> Ticket<'_> {
        let mut flights = lock(&self.flights);
        if let Some(flight) = flights.get(&key) {
            return Ticket::Wait(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key.clone(), Arc::clone(&flight));
        Ticket::Lead(LeaderGuard {
            table: self,
            key,
            flight,
            completed: false,
        })
    }

    /// Removes a finished flight so later requests start fresh searches
    /// (they will hit the context cache instead).
    fn retire(&self, key: &SearchKey) {
        lock(&self.flights).remove(key);
    }
}

/// The leader's obligation to publish. Dropping the guard without calling
/// [`LeaderGuard::complete`] — e.g. because the search panicked —
/// publishes an internal error to the followers.
pub(crate) struct LeaderGuard<'a> {
    table: &'a InFlightTable,
    key: SearchKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl LeaderGuard<'_> {
    /// Publishes the outcome to every follower and retires the flight.
    pub fn complete(mut self, outcome: SearchOutcome) {
        self.completed = true;
        self.table.retire(&self.key);
        self.flight.publish(outcome);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.table.retire(&self.key);
            self.flight.publish(Err(WireError::new(
                ErrorKind::Internal,
                "the leading search of this coalesced request failed abruptly",
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss::petri::{NetBuilder, TransitionKind};
    use std::sync::mpsc;
    use std::thread;

    fn shared_search() -> SharedSearch {
        let mut b = NetBuilder::new("t");
        let p = b.place("p", 0);
        let src = b.transition("in", TransitionKind::UncontrollableSource);
        let t = b.transition("t", TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 1);
        let net = b.build().unwrap();
        let context = Arc::new(SearchContext::new(&net));
        let source = net.transition_by_name("in").unwrap();
        let schedule = context
            .find_schedule(&net, source, &qss::ScheduleOptions::default())
            .unwrap();
        SharedSearch {
            schedules: Arc::new(SystemSchedules {
                schedules: vec![schedule],
                channel_bounds: Default::default(),
                stats: vec![],
            }),
            context,
            cache_hit: false,
        }
    }

    fn key(n: u64) -> SearchKey {
        (n, n, "config".to_string())
    }

    #[test]
    fn followers_receive_the_leaders_result_exactly_once_computed() {
        let table = Arc::new(InFlightTable::new());
        let Ticket::Lead(guard) = table.join(key(1)) else {
            panic!("first join must lead");
        };
        // Concurrent duplicates become followers.
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut followers = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let ready_tx = ready_tx.clone();
            followers.push(thread::spawn(move || {
                let Ticket::Wait(flight) = table.join(key(1)) else {
                    panic!("duplicate join must wait");
                };
                ready_tx.send(()).unwrap();
                flight.wait()
            }));
        }
        for _ in 0..4 {
            ready_rx.recv().unwrap();
        }
        let shared = shared_search();
        guard.complete(Ok(shared.clone()));
        for follower in followers {
            let outcome = follower.join().unwrap().unwrap();
            assert!(Arc::ptr_eq(&outcome.schedules, &shared.schedules));
            assert!(Arc::ptr_eq(&outcome.context, &shared.context));
        }
        // The flight retired: the next join leads a fresh search.
        assert!(matches!(table.join(key(1)), Ticket::Lead(_)));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table = InFlightTable::new();
        let _lead_a = table.join(key(1));
        assert!(matches!(table.join(key(2)), Ticket::Lead(_)));
        assert!(matches!(
            table.join((1, 1, "other-config".into())),
            Ticket::Lead(_)
        ));
    }

    #[test]
    fn dropped_leader_strands_no_followers() {
        let table = Arc::new(InFlightTable::new());
        let guard = match table.join(key(7)) {
            Ticket::Lead(guard) => guard,
            Ticket::Wait(_) => panic!("first join must lead"),
        };
        let follower = {
            let table = Arc::clone(&table);
            let Ticket::Wait(flight) = table.join(key(7)) else {
                panic!("duplicate join must wait");
            };
            thread::spawn(move || flight.wait())
        };
        drop(guard); // leader "panicked"
        let outcome = follower.join().unwrap();
        assert_eq!(outcome.unwrap_err().kind, ErrorKind::Internal);
        assert!(matches!(table.join(key(7)), Ticket::Lead(_)));
    }

    #[test]
    fn follower_deadline_times_out_the_wait() {
        let table = InFlightTable::new();
        let _guard = match table.join(key(9)) {
            Ticket::Lead(guard) => guard,
            Ticket::Wait(_) => panic!("first join must lead"),
        };
        let Ticket::Wait(flight) = table.join(key(9)) else {
            panic!("duplicate join must wait");
        };
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        let outcome = flight.wait_deadline(Some(deadline));
        assert_eq!(outcome.unwrap_err().kind, ErrorKind::Timeout);
    }
}
