//! `qssd` — the quasi-static scheduling service daemon.
//!
//! Binds a TCP listener, prints the resolved address on stdout (so
//! harnesses binding port 0 can discover it), and serves the
//! newline-delimited JSON protocol documented in `PROTOCOL.md` until a
//! `shutdown` request drains it.
//!
//! ```text
//! qssd --addr 127.0.0.1:7700 --workers 4 --cache 64
//! qssc remote 127.0.0.1:7700 build system.flowc --emit c
//! ```

use qss_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "\
qssd — quasi-static scheduling service (Cortadella et al., DAC 2000)

USAGE:
    qssd [OPTIONS]

OPTIONS:
    --addr HOST:PORT    listen address (default: 127.0.0.1:0 — the
                        resolved address is printed on stdout)
    --workers N         admission worker threads, also the bound on
                        concurrently running schedule searches
                        (default: min(cores, 8))
    --queue N           job-queue bound before `busy` backpressure
                        (default: 4 x workers)
    --cache N           SearchContext cache capacity, 0 disables
                        (default: 64)
    --max-line BYTES    per-request line limit (default: 1048576)
    --request-timeout MS
                        deadline per pipeline request: bounds queue wait,
                        the schedule search (cancelled cooperatively) and
                        coalesced waits, answering a typed `timeout`
                        error; 0 disables (default: 0)
    --idle-timeout MS   close connections with no request in progress for
                        this long; 0 disables (default: 0)
    --write-timeout MS  socket write timeout for response lines;
                        0 disables (default: 0)
    --max-connections N reject connections beyond N with a typed `busy`
                        line; 0 = unlimited (default: 0)
    --trace-out PATH    on graceful drain, write the span journal as a
                        Chrome trace-event JSON file (load it in
                        Perfetto / chrome://tracing)
    --help              show this help

Stop the daemon with a `{\"kind\": \"shutdown\"}` request (e.g.
`qssc remote ADDR shutdown`); it drains in-flight work and exits.
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(Exit::Usage(message)) => {
            eprintln!("qssd: {message}");
            eprintln!("run `qssd --help` for usage");
            ExitCode::from(2)
        }
        Err(Exit::Io(e)) => {
            eprintln!("qssd: {e}");
            ExitCode::FAILURE
        }
    }
}

enum Exit {
    Usage(String),
    Io(std::io::Error),
}

fn run() -> Result<(), Exit> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = parse_args(&args)?;
    let server = Server::bind(config).map_err(Exit::Io)?;
    let addr = server.local_addr();
    // The discovery line harnesses parse; flush before blocking.
    println!("qssd: listening on {addr}");
    std::io::stdout().flush().ok();
    server.run().map_err(Exit::Io)?;
    eprintln!("qssd: drained and stopped");
    Ok(())
}

fn parse_args(args: &[String]) -> Result<ServerConfig, Exit> {
    let mut config = ServerConfig::default();
    let mut queue_set = false;
    let mut i = 0;
    let next_value = |args: &[String], i: &mut usize, flag: &str| {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| Exit::Usage(format!("`{flag}` needs a value")))
    };
    let parse_number = |flag: &str, value: &str| {
        value
            .parse::<usize>()
            .map_err(|_| Exit::Usage(format!("invalid `{flag}` value `{value}`")))
    };
    // Timeouts are flat milliseconds; 0 keeps the feature off.
    let parse_timeout = |flag: &str, value: &str| {
        let ms = value
            .parse::<u64>()
            .map_err(|_| Exit::Usage(format!("invalid `{flag}` value `{value}`")))?;
        Ok(if ms == 0 {
            None
        } else {
            Some(std::time::Duration::from_millis(ms))
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => config.addr = next_value(args, &mut i, "--addr")?,
            "--workers" => {
                let value = next_value(args, &mut i, "--workers")?;
                config.workers = parse_number("--workers", &value)?.max(1);
            }
            "--queue" => {
                let value = next_value(args, &mut i, "--queue")?;
                config.queue_capacity = parse_number("--queue", &value)?.max(1);
                queue_set = true;
            }
            "--cache" => {
                let value = next_value(args, &mut i, "--cache")?;
                config.cache_capacity = parse_number("--cache", &value)?;
            }
            "--max-line" => {
                let value = next_value(args, &mut i, "--max-line")?;
                config.max_line_bytes = parse_number("--max-line", &value)?.max(64);
            }
            "--request-timeout" => {
                let value = next_value(args, &mut i, "--request-timeout")?;
                config.request_timeout = parse_timeout("--request-timeout", &value)?;
            }
            "--idle-timeout" => {
                let value = next_value(args, &mut i, "--idle-timeout")?;
                config.idle_timeout = parse_timeout("--idle-timeout", &value)?;
            }
            "--write-timeout" => {
                let value = next_value(args, &mut i, "--write-timeout")?;
                config.write_timeout = parse_timeout("--write-timeout", &value)?;
            }
            "--trace-out" => {
                config.trace_out = Some(next_value(args, &mut i, "--trace-out")?);
            }
            "--max-connections" => {
                let value = next_value(args, &mut i, "--max-connections")?;
                config.max_connections = parse_number("--max-connections", &value)?;
            }
            other => return Err(Exit::Usage(format!("unknown option `{other}`"))),
        }
        i += 1;
    }
    if !queue_set {
        // The documented default tracks the *final* worker count, not
        // the one ServerConfig::default() guessed before `--workers`.
        config.queue_capacity = 4 * config.workers;
    }
    Ok(config)
}
