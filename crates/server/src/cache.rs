//! The fingerprint-keyed cache of per-net [`SearchContext`]s.
//!
//! The expensive per-net state of a schedule request — the ECS partition,
//! the non-negative T-invariant basis and the seeded base
//! [`qss::petri::MarkingStore`], bundled as a [`SearchContext`] — depends
//! only on the net. A long-running service therefore keys it by
//! [`qss::LinkedArtifact::fingerprint`] and shares one
//! [`Arc<SearchContext>`] across every request that carries the same net,
//! paying the analyses once per net instead of once per request.
//!
//! Each entry additionally stores the net's *ordered digest*
//! ([`qss::petri::net_ordered_digest`]): the fingerprint is
//! order-independent, so a same-content-different-id-order net would
//! collide with an entry whose id-indexed analyses do not apply to it. A
//! digest mismatch on an otherwise matching fingerprint is counted as a
//! collision and served as a miss — never as silent reuse.

use crate::util::lock;
use qss::remote::CacheStats;
use qss::SearchContext;
use qss_obs::{Counter, Observer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

struct Entry {
    digest: u64,
    context: Arc<SearchContext>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// An LRU-bounded map from net fingerprint to shared [`SearchContext`],
/// with hit/miss/eviction/collision counters ([`qss_obs::Counter`]
/// cells, adoptable into an [`Observer`] registry so `stats` and
/// `metrics` read the same cells).
///
/// All methods take `&self`; the cache is shared freely across the
/// server's worker threads.
pub struct ContextCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    collisions: Counter,
}

impl ContextCache {
    /// Creates a cache holding at most `capacity` contexts. A capacity of
    /// zero disables caching entirely (every lookup misses) — the "cold"
    /// configuration the benchmark compares against.
    pub fn new(capacity: usize) -> Self {
        ContextCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            collisions: Counter::new(),
        }
    }

    /// Registers the cache's counter cells with the observer's registry
    /// (no-op for a disabled observer).
    pub fn adopt_into(&self, observer: &Observer) {
        observer.adopt_counter("context_cache.hits", &self.hits);
        observer.adopt_counter("context_cache.misses", &self.misses);
        observer.adopt_counter("context_cache.evictions", &self.evictions);
        observer.adopt_counter("context_cache.collisions", &self.collisions);
    }

    /// Returns the cached context for `(fingerprint, digest)` or builds,
    /// caches and returns a fresh one. The boolean reports whether this
    /// was a hit.
    ///
    /// `build` runs outside the cache lock, so a slow analysis of one net
    /// never blocks requests for other nets; if two threads race to build
    /// the same context, the first one to finish wins and the loser
    /// adopts the winner's copy (the in-flight coalescing layer upstream
    /// makes this race rare for `schedule` traffic).
    pub fn get_or_build(
        &self,
        fingerprint: u64,
        digest: u64,
        build: impl FnOnce() -> SearchContext,
    ) -> (Arc<SearchContext>, bool) {
        if let Some(context) = self.probe(fingerprint, digest) {
            return (context, true);
        }
        self.misses.inc();
        let context = Arc::new(build());
        (self.adopt_or_insert(fingerprint, digest, context), false)
    }

    /// Looks `(fingerprint, digest)` up, counting a hit or a collision.
    fn probe(&self, fingerprint: u64, digest: u64) -> Option<Arc<SearchContext>> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&fingerprint) {
            Some(entry) if entry.digest == digest => {
                entry.last_used = tick;
                self.hits.inc();
                Some(Arc::clone(&entry.context))
            }
            Some(_) => {
                // Same content-multiset, different id order: the cached
                // id-indexed analyses do NOT apply. Count and miss.
                self.collisions.inc();
                None
            }
            None => None,
        }
    }

    /// Inserts a freshly built context, unless a racing thread already
    /// published one for the same key (then that one is adopted).
    fn adopt_or_insert(
        &self,
        fingerprint: u64,
        digest: u64,
        context: Arc<SearchContext>,
    ) -> Arc<SearchContext> {
        if self.capacity == 0 {
            return context;
        }
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&fingerprint) {
            if entry.digest == digest {
                entry.last_used = tick;
                return Arc::clone(&entry.context);
            }
            // A colliding fingerprint: the newer net wins the slot.
            entry.digest = digest;
            entry.context = Arc::clone(&context);
            entry.last_used = tick;
            return context;
        }
        if inner.entries.len() >= self.capacity {
            if let Some(&victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&victim);
                self.evictions.inc();
            }
        }
        inner.entries.insert(
            fingerprint,
            Entry {
                digest,
                context: Arc::clone(&context),
                last_used: tick,
            },
        );
        context
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = lock(&self.inner).entries.len() as u64;
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            collisions: self.collisions.get(),
            entries,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss::petri::{NetBuilder, PetriNet, TransitionKind};

    fn tiny_net(tag: &str) -> PetriNet {
        let mut b = NetBuilder::new("tiny");
        let p = b.place(format!("p_{tag}"), 0);
        let src = b.transition(format!("in_{tag}"), TransitionKind::UncontrollableSource);
        let t = b.transition(format!("t_{tag}"), TransitionKind::Internal);
        b.arc_t2p(src, p, 1);
        b.arc_p2t(p, t, 1);
        b.build().unwrap()
    }

    fn keyed(tag: &str) -> (u64, u64, PetriNet) {
        let net = tiny_net(tag);
        (
            qss::petri::net_fingerprint(&net),
            qss::petri::net_ordered_digest(&net),
            net,
        )
    }

    #[test]
    fn hit_after_miss_shares_the_context() {
        let cache = ContextCache::new(4);
        let (fp, dg, net) = keyed("a");
        let (first, hit) = cache.get_or_build(fp, dg, || SearchContext::new(&net));
        assert!(!hit);
        let (second, hit) = cache.get_or_build(fp, dg, || panic!("must not rebuild"));
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn digest_mismatch_is_a_counted_collision_not_a_hit() {
        let cache = ContextCache::new(4);
        let (fp, dg, net) = keyed("a");
        cache.get_or_build(fp, dg, || SearchContext::new(&net));
        // Forge a same-fingerprint different-digest key.
        let (ctx, hit) = cache.get_or_build(fp, dg ^ 1, || SearchContext::new(&net));
        assert!(!hit);
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.misses, 2);
        // The newer digest now owns the slot.
        let (again, hit) = cache.get_or_build(fp, dg ^ 1, || panic!("cached"));
        assert!(hit);
        assert!(Arc::ptr_eq(&ctx, &again));
    }

    #[test]
    fn capacity_is_enforced_lru_first() {
        let cache = ContextCache::new(2);
        let (fp_a, dg_a, net_a) = keyed("a");
        let (fp_b, dg_b, net_b) = keyed("b");
        let (fp_c, dg_c, net_c) = keyed("c");
        cache.get_or_build(fp_a, dg_a, || SearchContext::new(&net_a));
        cache.get_or_build(fp_b, dg_b, || SearchContext::new(&net_b));
        // Touch `a` so `b` is the LRU entry.
        cache.get_or_build(fp_a, dg_a, || panic!("cached"));
        cache.get_or_build(fp_c, dg_c, || SearchContext::new(&net_c));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // `a` survived, `b` was evicted.
        let (_, hit) = cache.get_or_build(fp_a, dg_a, || panic!("a must be cached"));
        assert!(hit);
        let (_, hit) = cache.get_or_build(fp_b, dg_b, || SearchContext::new(&net_b));
        assert!(!hit);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ContextCache::new(0);
        let (fp, dg, net) = keyed("a");
        let (_, hit) = cache.get_or_build(fp, dg, || SearchContext::new(&net));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(fp, dg, || SearchContext::new(&net));
        assert!(!hit);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 2);
    }
}
