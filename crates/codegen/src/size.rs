//! Code-size estimation for generated tasks and process networks.
//!
//! The paper's Table 2 compares the object-code size of the single
//! generated task against the four-process implementation. We cannot run
//! the authors' compiler/linker, so size is estimated from a per-construct
//! byte model: every emitted statement, conditional, jump and
//! communication call contributes a fixed number of bytes. The model is
//! deliberately simple — Table 2's claim is about the *ratio* between the
//! two implementations, which is driven by how much per-process
//! communication and scheduling boilerplate the multi-task version
//! duplicates.

use crate::emit::TaskStats;
use serde::{Deserialize, Serialize};

/// Byte costs per emitted construct, loosely modelling a 32-bit RISC
/// target (R3000-class) at a given compiler optimisation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeCostModel {
    /// Name of the profile (e.g. `pfc`, `pfc-O`, `pfc-O2`).
    pub name: &'static str,
    /// Bytes per plain statement (assignment, arithmetic, call).
    pub bytes_per_statement: u64,
    /// Bytes per conditional construct head (`if`, `while`, `switch`).
    pub bytes_per_conditional: u64,
    /// Bytes per unconditional jump (`goto`).
    pub bytes_per_goto: u64,
    /// Bytes per `return`.
    pub bytes_per_return: u64,
    /// Bytes for an inlined communication primitive (buffer copy).
    pub bytes_per_inline_comm: u64,
    /// Bytes for a communication primitive implemented as an RTOS call.
    pub bytes_per_rtos_comm: u64,
    /// Fixed per-task overhead (prologue, epilogue, task control block).
    pub bytes_task_overhead: u64,
}

impl CodeCostModel {
    /// Unoptimised compilation (the paper's `pfc` column).
    pub fn unoptimized() -> Self {
        CodeCostModel {
            name: "pfc",
            bytes_per_statement: 16,
            bytes_per_conditional: 24,
            bytes_per_goto: 8,
            bytes_per_return: 8,
            bytes_per_inline_comm: 20,
            bytes_per_rtos_comm: 96,
            bytes_task_overhead: 160,
        }
    }

    /// `-O` compilation (the paper's `pfc-O` column).
    pub fn optimized() -> Self {
        CodeCostModel {
            name: "pfc-O",
            bytes_per_statement: 8,
            bytes_per_conditional: 12,
            bytes_per_goto: 4,
            bytes_per_return: 4,
            bytes_per_inline_comm: 12,
            bytes_per_rtos_comm: 56,
            bytes_task_overhead: 96,
        }
    }

    /// `-O2` compilation (the paper's `pfc-O2` column).
    pub fn optimized2() -> Self {
        CodeCostModel {
            name: "pfc-O2",
            bytes_per_statement: 8,
            bytes_per_conditional: 10,
            bytes_per_goto: 4,
            bytes_per_return: 4,
            bytes_per_inline_comm: 10,
            bytes_per_rtos_comm: 52,
            bytes_task_overhead: 92,
        }
    }

    /// All three profiles used by the paper's tables.
    pub fn profiles() -> [CodeCostModel; 3] {
        [Self::unoptimized(), Self::optimized(), Self::optimized2()]
    }
}

/// Estimates the object-code size in bytes of a generated task from its
/// emission statistics.
pub fn estimate_code_size(stats: &TaskStats, model: &CodeCostModel) -> u64 {
    let plain = stats
        .num_statements
        .saturating_sub(stats.num_gotos + stats.num_returns + stats.num_conditionals)
        as u64;
    model.bytes_task_overhead
        + plain * model.bytes_per_statement
        + stats.num_conditionals as u64 * model.bytes_per_conditional
        + stats.num_gotos as u64 * model.bytes_per_goto
        + stats.num_returns as u64 * model.bytes_per_return
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TaskStats {
        TaskStats {
            num_segments: 3,
            num_segment_nodes: 5,
            num_threads: 2,
            num_state_variables: 1,
            num_statements: 40,
            num_gotos: 3,
            num_conditionals: 5,
            num_returns: 4,
        }
    }

    #[test]
    fn optimisation_levels_reduce_size() {
        let s = stats();
        let o0 = estimate_code_size(&s, &CodeCostModel::unoptimized());
        let o1 = estimate_code_size(&s, &CodeCostModel::optimized());
        let o2 = estimate_code_size(&s, &CodeCostModel::optimized2());
        assert!(o0 > o1);
        assert!(o1 >= o2);
    }

    #[test]
    fn size_grows_with_statement_count() {
        let small = stats();
        let mut big = stats();
        big.num_statements += 100;
        let model = CodeCostModel::unoptimized();
        assert!(estimate_code_size(&big, &model) > estimate_code_size(&small, &model));
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: Vec<_> = CodeCostModel::profiles().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["pfc", "pfc-O", "pfc-O2"]);
    }
}
