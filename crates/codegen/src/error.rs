//! Error handling for code generation.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodegenError>;

/// Errors produced while generating code from a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The schedule references a transition the linked system knows nothing
    /// about (it was not produced by the same front end run).
    UnknownTransition(String),
    /// The selected state places cannot distinguish two different
    /// continuations at a leaf of a code segment.
    AmbiguousState(String),
    /// The schedule is malformed (e.g. empty).
    InvalidSchedule(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownTransition(name) => {
                write!(
                    f,
                    "schedule uses transition `{name}` unknown to the linked system"
                )
            }
            CodegenError::AmbiguousState(msg) => {
                write!(
                    f,
                    "state variables cannot resolve the next code segment: {msg}"
                )
            }
            CodegenError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(CodegenError::UnknownTransition("t".into())
            .to_string()
            .contains("`t`"));
        assert!(CodegenError::AmbiguousState("x".into())
            .to_string()
            .contains("state"));
        assert!(CodegenError::InvalidSchedule("empty".into())
            .to_string()
            .contains("empty"));
    }
}
