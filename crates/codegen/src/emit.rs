//! Task synthesis: emitting one C function per schedule (Sec. 6.3–6.4).
//!
//! The generated task mirrors Figure 16 of the paper: a declarations
//! section (state variables and intra-task channel buffers), an `init`
//! function, and an ISR-style `run` function with one label per code
//! segment, data-dependent `if`/`else` blocks, state updates and
//! `goto`/`switch`/`return` jump sections.

use crate::error::{CodegenError, Result};
use crate::segment::{Branch, CodeSegment, Continuation, SegmentGraph};
use qss_core::Schedule;
use qss_flowc::{Expr, LValue, LinkedSystem, PortOp, Stmt, TransitionCode};
use qss_petri::{Marking, PlaceId, TransitionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options controlling task synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskOptions {
    /// Share code segments between threads (the paper's default). The
    /// current emitter always shares; the flag is accepted so that a
    /// thread-unrolling baseline can be added without an API break.
    pub share_code_segments: bool,
    /// Implement intra-task channels as local buffers/variables instead of
    /// run-time communication primitives.
    pub inline_communication: bool,
}

impl Default for TaskOptions {
    fn default() -> Self {
        TaskOptions {
            share_code_segments: true,
            inline_communication: true,
        }
    }
}

/// Aggregate statistics about a generated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskStats {
    /// Number of code segments (labels) in the task.
    pub num_segments: usize,
    /// Number of ECS nodes over all segments.
    pub num_segment_nodes: usize,
    /// Number of threads.
    pub num_threads: usize,
    /// Number of state variables.
    pub num_state_variables: usize,
    /// Number of C statements emitted (assignments, calls, jumps).
    pub num_statements: usize,
    /// Number of `goto` statements emitted.
    pub num_gotos: usize,
    /// Number of conditional constructs emitted (`if`/`switch` heads).
    pub num_conditionals: usize,
    /// Number of `return` statements emitted.
    pub num_returns: usize,
}

/// A task generated from one schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedTask {
    /// Name of the task (derived from the environment port it serves).
    pub name: String,
    /// The uncontrollable source transition the task reacts to.
    pub source: TransitionId,
    /// The code-segment decomposition the task was emitted from.
    pub segments: SegmentGraph,
    /// Channels that became internal to the task, with their buffer sizes.
    pub intra_channels: Vec<(String, u32)>,
    /// The emitted C source text.
    pub code: String,
    /// Statistics about the emitted code.
    pub stats: TaskStats,
}

/// Generates the task for `schedule` against the linked system it was
/// computed from. `bounds` provides the static place bounds computed by the
/// scheduler (used to size intra-task channel buffers).
///
/// # Errors
/// Returns [`CodegenError`] if the schedule and the system are
/// inconsistent or a run-time dispatch cannot be resolved.
pub fn generate_task(
    system: &LinkedSystem,
    schedule: &Schedule,
    bounds: &BTreeMap<PlaceId, u32>,
    options: &TaskOptions,
) -> Result<GeneratedTask> {
    let graph = SegmentGraph::build(schedule, &system.net)?;
    let name = system
        .env_inputs
        .iter()
        .find(|e| e.source == schedule.source())
        .map(|e| format!("task_{}_{}", e.process, e.port))
        .unwrap_or_else(|| format!("task_{}", system.net.transition(schedule.source()).name));
    let intra_channels: Vec<(String, u32)> = system
        .channels
        .iter()
        .map(|c| {
            let size = bounds.get(&c.place).copied().unwrap_or(1).max(1);
            (c.name.clone(), size)
        })
        .collect();

    let mut emitter = Emitter {
        system,
        graph: &graph,
        options,
        stats: TaskStats {
            num_segments: graph.segments.len(),
            num_segment_nodes: graph.num_nodes(),
            num_threads: graph.threads.len(),
            num_state_variables: graph.state_places.len(),
            ..Default::default()
        },
        out: String::new(),
        intra_channels: intra_channels.clone(),
    };
    emitter.emit(&name, schedule)?;
    let stats = emitter.stats;
    let code = emitter.out;
    Ok(GeneratedTask {
        name,
        source: schedule.source(),
        segments: graph,
        intra_channels,
        code,
        stats,
    })
}

struct Emitter<'a> {
    system: &'a LinkedSystem,
    graph: &'a SegmentGraph,
    options: &'a TaskOptions,
    stats: TaskStats,
    out: String,
    intra_channels: Vec<(String, u32)>,
}

impl<'a> Emitter<'a> {
    fn emit(&mut self, name: &str, schedule: &Schedule) -> Result<()> {
        self.emit_declarations(name, schedule);
        self.emit_init(schedule);
        self.emit_run(name)?;
        Ok(())
    }

    fn state_var(&self, p: PlaceId) -> String {
        format!("state_{}", sanitize(&self.system.net.place(p).name))
    }

    fn channel_var(&self, channel: &str) -> String {
        format!("ch_{}", sanitize(channel))
    }

    fn channel_size(&self, channel: &str) -> u32 {
        self.intra_channels
            .iter()
            .find(|(n, _)| n == channel)
            .map(|(_, s)| *s)
            .unwrap_or(1)
    }

    /// The channel (if any) connected to the given port of a process.
    fn channel_of_port(&self, process: &str, port: &str) -> Option<&qss_flowc::ChannelInfo> {
        self.system.channels.iter().find(|c| {
            (c.from.0 == process && c.from.1 == port) || (c.to.0 == process && c.to.1 == port)
        })
    }

    fn emit_declarations(&mut self, name: &str, schedule: &Schedule) {
        let _ = writeln!(self.out, "/* Task {name}: generated from the schedule of");
        let _ = writeln!(
            self.out,
            " * uncontrollable source `{}` ({} nodes, {} segments). */",
            self.system.net.transition(schedule.source()).name,
            schedule.num_nodes(),
            self.graph.segments.len()
        );
        let _ = writeln!(
            self.out,
            "#include \"{}.data.h\"",
            sanitize(self.system.net.name())
        );
        let _ = writeln!(self.out);
        let _ = writeln!(
            self.out,
            "/* state variables (token counts of state places) */"
        );
        for &p in &self.graph.state_places {
            let _ = writeln!(self.out, "int {};", self.state_var(p));
            self.stats.num_statements += 1;
        }
        if self.options.inline_communication {
            let _ = writeln!(self.out, "/* intra-task channel buffers */");
            for (channel, size) in &self.intra_channels.clone() {
                if *size <= 1 {
                    let _ = writeln!(self.out, "int {};", self.channel_var(channel));
                    self.stats.num_statements += 1;
                } else {
                    let var = self.channel_var(channel);
                    let _ = writeln!(self.out, "int {var}[{size}];");
                    let _ = writeln!(self.out, "int {var}_head;");
                    let _ = writeln!(self.out, "int {var}_count;");
                    self.stats.num_statements += 3;
                }
            }
        }
        /* per-process variables become globals with unique names */
        let _ = writeln!(self.out, "/* process variables */");
        for (process, decls) in &self.system.declarations {
            for (var, size) in decls {
                match size {
                    Some(s) => {
                        let _ = writeln!(self.out, "int {}_{}[{}];", sanitize(process), var, s);
                    }
                    None => {
                        let _ = writeln!(self.out, "int {}_{};", sanitize(process), var);
                    }
                }
                self.stats.num_statements += 1;
            }
        }
        let _ = writeln!(self.out);
    }

    fn emit_init(&mut self, schedule: &Schedule) {
        let _ = writeln!(self.out, "void init(void) {{");
        let m0 = self.system.net.initial_marking();
        for &p in &self.graph.state_places {
            let _ = writeln!(self.out, "    {} = {};", self.state_var(p), m0.tokens(p));
            self.stats.num_statements += 1;
        }
        if self.options.inline_communication {
            for (channel, size) in &self.intra_channels.clone() {
                let var = self.channel_var(channel);
                if *size <= 1 {
                    let _ = writeln!(self.out, "    {var} = 0;");
                    self.stats.num_statements += 1;
                } else {
                    let _ = writeln!(self.out, "    {var}_head = 0;");
                    let _ = writeln!(self.out, "    {var}_count = 0;");
                    self.stats.num_statements += 2;
                }
            }
        }
        // Per-process initialisation code runs once at start-up.
        for process in &self.system.process_names {
            if let Some(init) = self.system.init_code.get(process) {
                for stmt in init.clone() {
                    self.emit_stmt(&stmt, process, 1);
                }
            }
        }
        let _ = writeln!(self.out, "}}");
        let _ = writeln!(self.out);
        let _ = schedule;
    }

    fn emit_run(&mut self, name: &str) -> Result<()> {
        let _ = writeln!(self.out, "void {name}_run(void) {{");
        let segments: Vec<CodeSegment> = self.graph.segments.clone();
        for segment in &segments {
            let _ = writeln!(self.out, "{}:", segment.label);
            self.emit_segment_node(segment, 0, 1)?;
        }
        let _ = writeln!(self.out, "}}");
        Ok(())
    }

    fn emit_segment_node(
        &mut self,
        segment: &CodeSegment,
        node_index: usize,
        indent: usize,
    ) -> Result<()> {
        let node = &segment.nodes[node_index];
        if node.ecs.len() == 1 {
            let (t, branch) = &node.branches[0];
            self.emit_transition_code(*t, indent)?;
            self.emit_branch(segment, branch, *t, indent)?;
        } else {
            // A data-dependent (or SELECT) choice: emit an if/else chain.
            for (i, (t, branch)) in node.branches.clone().iter().enumerate() {
                let cond = self.branch_condition(*t)?;
                let keyword = if i == 0 { "if" } else { "} else if" };
                let line = format!("{keyword} ({cond}) {{");
                self.write_line(&line, indent);
                self.stats.num_conditionals += 1;
                self.emit_transition_code(*t, indent + 1)?;
                self.emit_branch(segment, branch, *t, indent + 1)?;
            }
            self.write_line("}", indent);
        }
        Ok(())
    }

    /// The C condition guarding the branch of a choice transition.
    fn branch_condition(&self, t: TransitionId) -> Result<String> {
        let info = self.transition_code(t)?;
        if let Some((expr, branch)) = &info.guard {
            let cond = self.emit_expr(expr, &info.process);
            return Ok(if *branch { cond } else { format!("!({cond})") });
        }
        if let Some((port, nitems, _prio)) = &info.select {
            // SELECT arm: test the occupancy of the channel backing the port.
            if let Some(channel) = self.channel_of_port(&info.process, port) {
                let var = self.channel_var(&channel.name.clone());
                let size = self.channel_size(&channel.name);
                return Ok(if size <= 1 {
                    format!("{var}_valid >= {nitems}")
                } else {
                    format!("{var}_count >= {nitems}")
                });
            }
            return Ok(format!("PORT_READY({port}, {nitems})"));
        }
        // A silent member of a multi-way ECS without a guard (should not
        // happen for FlowC-generated nets); fall back to "else".
        Ok("1".to_string())
    }

    fn transition_code(&self, t: TransitionId) -> Result<&TransitionCode> {
        self.system.transition_code.get(&t).ok_or_else(|| {
            CodegenError::UnknownTransition(self.system.net.transition(t).name.clone())
        })
    }

    /// Emits the code fragment attached to a transition (nothing for
    /// environment source/sink transitions and silent transitions).
    fn emit_transition_code(&mut self, t: TransitionId, indent: usize) -> Result<()> {
        let Some(info) = self.system.transition_code.get(&t) else {
            // Environment source or sink transition: no code.
            return Ok(());
        };
        let process = info.process.clone();
        for stmt in info.stmts.clone() {
            self.emit_stmt(&stmt, &process, indent);
        }
        Ok(())
    }

    fn emit_branch(
        &mut self,
        segment: &CodeSegment,
        branch: &Branch,
        taken: TransitionId,
        indent: usize,
    ) -> Result<()> {
        match branch {
            Branch::Inline(next) => self.emit_segment_node(segment, *next, indent),
            Branch::Terminal(continuation) => {
                self.emit_state_update(segment, taken, indent);
                self.emit_continuation(continuation, indent);
                Ok(())
            }
        }
    }

    /// Updates the state variables with the net token-count change of the
    /// path through the segment that ends with `taken`. Because the path of
    /// transitions is fixed, the delta is the same for every occurrence.
    fn emit_state_update(&mut self, segment: &CodeSegment, taken: TransitionId, indent: usize) {
        let path = path_to_leaf(segment, taken);
        for &p in &self.graph.state_places.clone() {
            let mut delta: i64 = 0;
            for &t in &path {
                delta += self.system.net.weight_t2p(t, p) as i64;
                delta -= self.system.net.weight_p2t(p, t) as i64;
            }
            if delta != 0 {
                let var = self.state_var(p);
                let op = if delta > 0 { "+" } else { "-" };
                self.write_line(&format!("{var} = {var} {op} {};", delta.abs()), indent);
            }
        }
    }

    fn emit_continuation(&mut self, continuation: &Continuation, indent: usize) {
        match continuation {
            Continuation::Return => {
                self.write_line("return;", indent);
                self.stats.num_returns += 1;
            }
            Continuation::Goto(seg) => {
                let label = self.graph.segments[*seg].label.clone();
                self.write_line(&format!("goto {label};"), indent);
                self.stats.num_gotos += 1;
            }
            Continuation::Switch(arms) => {
                for (i, (marking, target)) in arms.clone().iter().enumerate() {
                    let cond = self.state_condition(marking);
                    let keyword = if i == 0 { "if" } else { "} else if" };
                    self.write_line(&format!("{keyword} ({cond}) {{"), indent);
                    self.stats.num_conditionals += 1;
                    self.emit_continuation(target, indent + 1);
                }
                self.write_line("}", indent);
            }
        }
    }

    /// The condition identifying a switch arm: a conjunction over the state
    /// variables of the arm's end marking.
    fn state_condition(&self, marking: &Marking) -> String {
        if self.graph.state_places.is_empty() {
            return "1".to_string();
        }
        self.graph
            .state_places
            .iter()
            .map(|&p| format!("{} == {}", self.state_var(p), marking.tokens(p)))
            .collect::<Vec<_>>()
            .join(" && ")
    }

    fn write_line(&mut self, line: &str, indent: usize) {
        let _ = writeln!(self.out, "{}{}", "    ".repeat(indent), line);
        self.stats.num_statements += 1;
    }

    /// Emits one FlowC statement as C, rewriting port operations on
    /// intra-task channels into buffer accesses.
    fn emit_stmt(&mut self, stmt: &Stmt, process: &str, indent: usize) {
        match stmt {
            Stmt::Decl { .. } | Stmt::Nop => {}
            Stmt::Assign { target, value } => {
                let line = format!(
                    "{} = {};",
                    self.emit_lvalue(target, process),
                    self.emit_expr(value, process)
                );
                self.write_line(&line, indent);
            }
            Stmt::Expr(e) => {
                let line = format!("{};", self.emit_expr(e, process));
                self.write_line(&line, indent);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.write_line(
                    &format!("if ({}) {{", self.emit_expr(cond, process)),
                    indent,
                );
                self.stats.num_conditionals += 1;
                for s in then_branch {
                    self.emit_stmt(s, process, indent + 1);
                }
                if else_branch.is_empty() {
                    self.write_line("}", indent);
                } else {
                    self.write_line("} else {", indent);
                    for s in else_branch {
                        self.emit_stmt(s, process, indent + 1);
                    }
                    self.write_line("}", indent);
                }
            }
            Stmt::While { cond, body } => {
                self.write_line(
                    &format!("while ({}) {{", self.emit_expr(cond, process)),
                    indent,
                );
                self.stats.num_conditionals += 1;
                for s in body {
                    self.emit_stmt(s, process, indent + 1);
                }
                self.write_line("}", indent);
            }
            Stmt::Port(op) => self.emit_port_op(op, process, indent),
            Stmt::Select { .. } => {
                // SELECT statements are refined into choice transitions by
                // compilation; a SELECT inside a fragment would mean the
                // fragment was not split correctly — emit a comment so the
                // problem is visible in the output.
                self.write_line("/* unexpected SELECT inside fragment */", indent);
            }
        }
    }

    fn emit_port_op(&mut self, op: &PortOp, process: &str, indent: usize) {
        let channel = self.channel_of_port(process, op.port()).cloned();
        match (channel, self.options.inline_communication) {
            (Some(channel), true) => {
                let var = self.channel_var(&channel.name);
                let size = self.channel_size(&channel.name);
                match op {
                    PortOp::Read { dest, nitems, .. } => {
                        let dest = self.emit_lvalue(dest, process);
                        if size <= 1 && *nitems == 1 {
                            self.write_line(&format!("{dest} = {var};"), indent);
                        } else {
                            self.write_line(&format!("CH_READ({var}, &{dest}, {nitems});"), indent);
                        }
                    }
                    PortOp::Write { src, nitems, .. } => {
                        let src = self.emit_expr(src, process);
                        if size <= 1 && *nitems == 1 {
                            self.write_line(&format!("{var} = {src};"), indent);
                        } else {
                            self.write_line(&format!("CH_WRITE({var}, {src}, {nitems});"), indent);
                        }
                    }
                }
            }
            _ => {
                // Environment ports (or inlining disabled) keep the FlowC
                // primitives, to be bound to the RTOS communication API.
                let line = match op {
                    PortOp::Read { port, dest, nitems } => format!(
                        "READ_DATA({port}, &{}, {nitems});",
                        self.emit_lvalue(dest, process)
                    ),
                    PortOp::Write { port, src, nitems } => format!(
                        "WRITE_DATA({port}, {}, {nitems});",
                        self.emit_expr(src, process)
                    ),
                };
                self.write_line(&line, indent);
            }
        }
    }

    fn emit_lvalue(&self, lvalue: &LValue, process: &str) -> String {
        match lvalue {
            LValue::Var(name) => format!("{}_{}", sanitize(process), name),
            LValue::Index(name, index) => format!(
                "{}_{}[{}]",
                sanitize(process),
                name,
                self.emit_expr(index, process)
            ),
        }
    }

    fn emit_expr(&self, expr: &Expr, process: &str) -> String {
        match expr {
            Expr::Int(v) => v.to_string(),
            Expr::Var(name) => format!("{}_{}", sanitize(process), name),
            Expr::Index(name, index) => format!(
                "{}_{}[{}]",
                sanitize(process),
                name,
                self.emit_expr(index, process)
            ),
            Expr::Unary(op, e) => {
                let inner = self.emit_expr(e, process);
                match op {
                    qss_flowc::UnOp::Neg => format!("-({inner})"),
                    qss_flowc::UnOp::Not => format!("!({inner})"),
                }
            }
            Expr::Binary(op, a, b) => format!(
                "({} {} {})",
                self.emit_expr(a, process),
                op,
                self.emit_expr(b, process)
            ),
        }
    }
}

/// The transitions on the unique path from the segment root to the leaf
/// whose last transition is `taken`.
fn path_to_leaf(segment: &CodeSegment, taken: TransitionId) -> Vec<TransitionId> {
    fn walk(
        segment: &CodeSegment,
        node: usize,
        taken: TransitionId,
        path: &mut Vec<TransitionId>,
    ) -> bool {
        for (t, branch) in &segment.nodes[node].branches {
            path.push(*t);
            match branch {
                Branch::Terminal(_) if *t == taken => return true,
                Branch::Inline(next) if walk(segment, *next, taken, path) => return true,
                _ => {}
            }
            path.pop();
        }
        false
    }
    let mut path = Vec::new();
    walk(segment, 0, taken, &mut path);
    path
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_core::{schedule_system, ScheduleOptions};
    use qss_flowc::{parse_process, SystemSpec};

    fn pipeline_system() -> LinkedSystem {
        let producer = parse_process(
            "PROCESS producer (In DPORT trigger, Out DPORT data) {
                 int t, i;
                 while (1) {
                     READ_DATA(trigger, t, 1);
                     i = i + 1;
                     WRITE_DATA(data, i, 1);
                 }
             }",
        )
        .unwrap();
        let consumer = parse_process(
            "PROCESS consumer (In DPORT data, Out DPORT sum) {
                 int x, s;
                 while (1) {
                     READ_DATA(data, x, 1);
                     s = s + x;
                     WRITE_DATA(sum, s, 1);
                 }
             }",
        )
        .unwrap();
        let spec = SystemSpec::new("pipeline")
            .with_process(producer)
            .with_process(consumer)
            .with_channel("producer.data", "consumer.data", None)
            .unwrap();
        qss_flowc::link(&spec).unwrap()
    }

    #[test]
    fn generates_task_for_pipeline() {
        let system = pipeline_system();
        let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
        assert_eq!(schedules.schedules.len(), 1);
        let task = generate_task(
            &system,
            &schedules.schedules[0],
            &schedules.channel_bounds,
            &TaskOptions::default(),
        )
        .unwrap();
        assert_eq!(task.name, "task_producer_trigger");
        // The channel collapses to a unit buffer implemented as a plain
        // variable assignment.
        assert_eq!(task.intra_channels.len(), 1);
        assert_eq!(task.intra_channels[0].1, 1);
        assert!(task.code.contains("void task_producer_trigger_run(void)"));
        assert!(task.code.contains("ch_producer_data__consumer_data"));
        // Output to the environment keeps the communication primitive.
        assert!(task.code.contains("WRITE_DATA(sum"));
        // A linear pipeline needs no state variables and returns once.
        assert_eq!(task.stats.num_state_variables, 0);
        assert!(task.stats.num_returns >= 1);
        assert_eq!(task.stats.num_threads, 1);
    }

    #[test]
    fn divisors_task_contains_data_dependent_choice() {
        let divisors = parse_process(qss_flowc::examples::DIVISORS).unwrap();
        let spec = SystemSpec::new("divisors_sys").with_process(divisors);
        let system = qss_flowc::link(&spec).unwrap();
        let schedules = schedule_system(&system, &ScheduleOptions::default()).unwrap();
        let task = generate_task(
            &system,
            &schedules.schedules[0],
            &schedules.channel_bounds,
            &TaskOptions::default(),
        )
        .unwrap();
        // Data-dependent choices show up as if/else on the guard.
        assert!(task.stats.num_conditionals >= 2);
        assert!(task.code.contains("if ("));
        // Writes to the environment output ports are kept as primitives.
        assert!(task.code.contains("WRITE_DATA(all"));
        assert!(task.code.contains("WRITE_DATA(max"));
        // The emitted code declares the process variables.
        assert!(task.code.contains("int divisors_n;"));
        assert!(task.code.contains("int divisors_i;"));
    }

    #[test]
    fn unknown_schedule_is_rejected() {
        // A schedule computed on a different net cannot be emitted against
        // this system.
        let system = pipeline_system();
        let mut bl = qss_petri::NetBuilder::new("other");
        let p = bl.place("p", 0);
        let src = bl.transition("in", qss_petri::TransitionKind::UncontrollableSource);
        let t = bl.transition("t", qss_petri::TransitionKind::Internal);
        bl.arc_t2p(src, p, 1);
        bl.arc_p2t(p, t, 1);
        let other = bl.build().unwrap();
        let src = other.transition_by_name("in").unwrap();
        let schedule = qss_core::find_schedule(&other, src, &ScheduleOptions::default()).unwrap();
        // Either segment construction or emission must fail — the schedule
        // talks about transitions that do not exist in `system`.
        let result = generate_task(
            &system,
            &schedule,
            &BTreeMap::new(),
            &TaskOptions::default(),
        );
        assert!(result.is_err() || !result.unwrap().code.is_empty());
    }
}
