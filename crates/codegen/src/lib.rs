//! Code generation for quasi-static schedules (Sec. 6 of the paper).
//!
//! A schedule is turned into one sequential *task*:
//!
//! * the schedule is decomposed into *threads* (reactions between await
//!   nodes) and shared *code segments* (maximal common sub-trees keyed by
//!   their ECS), so that code common to several threads is emitted once,
//! * a minimal set of *state places* is selected: only places that are both
//!   updated by some segment and needed to decide what to execute next
//!   become state variables of the task,
//! * a C function in ISR style is synthesised: one label per code segment,
//!   `if`/`else` for data-dependent choices, state updates at the leaves
//!   and `goto`/`switch`/`return` jump sections, exactly as in Figure 16,
//! * channels that became internal to the task are implemented as local
//!   buffers sized by the schedule's static bounds (unit-size buffers
//!   collapse to plain variables).
//!
//! The entry point is [`generate_task`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod segment;
pub mod size;

pub use emit::{generate_task, GeneratedTask, TaskOptions, TaskStats};
pub use error::{CodegenError, Result};
pub use segment::{CodeSegment, Continuation, SegmentGraph, SegmentNode};
pub use size::{estimate_code_size, CodeCostModel};
