//! Threads, code segments and state-variable selection (Sec. 6.1–6.2).
//!
//! The schedule traversal of the paper produces a minimal set of *code
//! segments*: for every node of the schedule there is exactly one code
//! segment node with the same ECS, so code shared between threads is never
//! duplicated. This module reformulates the `traverse`/`compare` pair of
//! the paper as a deterministic graph construction:
//!
//! 1. schedule nodes are grouped by their ECS (the set of transitions on
//!    their outgoing edges),
//! 2. an ECS becomes the *root* of a code segment if it is the source ECS,
//!    if it is entered from more than one context, or if its single
//!    entering context does not always continue into it (a run-time
//!    dispatch is needed); all other ECSs are inlined into the segment of
//!    their unique predecessor,
//! 3. each leaf of a segment carries a [`Continuation`]: `return` when the
//!    reaction reached an await node, an unconditional `goto` to another
//!    segment, or a state `switch` between the two,
//! 4. the *state places* are the places whose token counts are needed to
//!    resolve some switch — by construction they are also places updated by
//!    the involved transitions, matching the paper's intersection rule.

use crate::error::{CodegenError, Result};
use qss_core::{NodeId, Schedule};
use qss_petri::{Marking, PetriNet, PlaceId, TransitionId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The set of transitions labelling the outgoing edges of a schedule node,
/// sorted to act as a canonical key.
pub type EcsKey = Vec<TransitionId>;

/// What happens after the last transition of a code-segment branch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Continuation {
    /// The reaction reached an await node: the task returns and waits for
    /// the next occurrence of its source transition.
    Return,
    /// Control always continues with the given code segment.
    Goto(usize),
    /// Control depends on the task state: each arm pairs the (full) end
    /// marking observed in the schedule with its target.
    Switch(Vec<(Marking, Box<Continuation>)>),
}

/// A branch out of a [`SegmentNode`]: either more code within the same
/// segment or a terminal continuation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Branch {
    /// The next node within the same code segment.
    Inline(usize),
    /// End of the segment along this branch.
    Terminal(Continuation),
}

/// One node of a code segment: an ECS and one branch per transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentNode {
    /// The ECS executed at this node (one transition, or the members of a
    /// data-dependent choice).
    pub ecs: EcsKey,
    /// One branch per ECS transition, in the same order as `ecs`.
    pub branches: Vec<(TransitionId, Branch)>,
}

/// A code segment: a rooted tree of [`SegmentNode`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeSegment {
    /// Identifier of the segment (index in [`SegmentGraph::segments`]).
    pub id: usize,
    /// Emission label (derived from the root ECS transition names).
    pub label: String,
    /// Nodes of the segment; node 0 is the root.
    pub nodes: Vec<SegmentNode>,
}

impl CodeSegment {
    /// The root node of the segment.
    pub fn root(&self) -> &SegmentNode {
        &self.nodes[0]
    }

    /// Total number of ECS nodes in the segment.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// One thread of a task: the part of the schedule traversed between an
/// await node and the next await nodes (Sec. 6.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thread {
    /// Marking of the await node the thread starts from.
    pub start: Marking,
    /// Code segments used by the thread, in order of first use.
    pub segments: Vec<usize>,
    /// Markings of the await nodes the thread can end at.
    pub ends: Vec<Marking>,
}

/// The complete decomposition of one schedule into code segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentGraph {
    /// All code segments; `segments[entry]` is `cs1`, the segment
    /// containing the source transition.
    pub segments: Vec<CodeSegment>,
    /// Index of the entry segment.
    pub entry: usize,
    /// Places whose token counts become state variables of the task.
    pub state_places: Vec<PlaceId>,
    /// The threads of the task.
    pub threads: Vec<Thread>,
}

impl SegmentGraph {
    /// Builds the segment graph of `schedule`.
    ///
    /// # Errors
    /// Returns [`CodegenError`] if the schedule is empty or a run-time
    /// dispatch cannot be resolved by any set of state places.
    pub fn build(schedule: &Schedule, net: &PetriNet) -> Result<SegmentGraph> {
        if schedule.num_nodes() == 0 {
            return Err(CodegenError::InvalidSchedule(
                "schedule has no nodes".into(),
            ));
        }
        let builder = GraphBuilder::new(schedule, net);
        builder.build()
    }

    /// The segment that owns (has as root or inlines) the given ECS key,
    /// if any.
    pub fn segment_of_ecs(&self, key: &EcsKey) -> Option<usize> {
        self.segments
            .iter()
            .position(|s| s.nodes.iter().any(|n| &n.ecs == key))
    }

    /// Total number of segment nodes over all segments.
    pub fn num_nodes(&self) -> usize {
        self.segments.iter().map(|s| s.num_nodes()).sum()
    }
}

struct GraphBuilder<'a> {
    schedule: &'a Schedule,
    net: &'a PetriNet,
    /// Key of every schedule node.
    node_key: BTreeMap<NodeId, EcsKey>,
    /// Distinct keys in first-seen order.
    keys: Vec<EcsKey>,
}

/// One observed outcome of firing transition `t` at some schedule node
/// with a given ECS key.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// The target is an await node with this marking.
    Await(Marking),
    /// The target is an internal node with this key and marking.
    Next(EcsKey, Marking),
}

/// The *target* of an outcome, ignoring the concrete marking.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Target {
    /// The reaction ends at an await node.
    Await,
    /// Control continues with the given ECS.
    Key(EcsKey),
}

impl Outcome {
    fn target(&self) -> Target {
        match self {
            Outcome::Await(_) => Target::Await,
            Outcome::Next(k, _) => Target::Key(k.clone()),
        }
    }

    fn marking(&self) -> &Marking {
        match self {
            Outcome::Await(m) | Outcome::Next(_, m) => m,
        }
    }
}

impl<'a> GraphBuilder<'a> {
    fn new(schedule: &'a Schedule, net: &'a PetriNet) -> Self {
        let mut node_key = BTreeMap::new();
        let mut keys: Vec<EcsKey> = Vec::new();
        for id in schedule.node_ids() {
            let mut key: EcsKey = schedule.edges(id).iter().map(|(t, _)| *t).collect();
            key.sort();
            if !keys.contains(&key) {
                keys.push(key.clone());
            }
            node_key.insert(id, key);
        }
        GraphBuilder {
            schedule,
            net,
            node_key,
            keys,
        }
    }

    /// All outcomes observed for `(key, t)` over the schedule.
    fn outcomes(&self, key: &EcsKey, t: TransitionId) -> Vec<Outcome> {
        let mut result = Vec::new();
        for id in self.schedule.node_ids() {
            if &self.node_key[&id] != key {
                continue;
            }
            for (edge_t, target) in self.schedule.edges(id) {
                if *edge_t != t {
                    continue;
                }
                let outcome = if self.schedule.is_await_node(self.net, *target) {
                    Outcome::Await(self.schedule.marking_owned(*target))
                } else {
                    Outcome::Next(
                        self.node_key[target].clone(),
                        self.schedule.marking_owned(*target),
                    )
                };
                if !result.contains(&outcome) {
                    result.push(outcome);
                }
            }
        }
        result
    }

    /// The distinct targets observed for `(key, t)`.
    fn targets(&self, key: &EcsKey, t: TransitionId) -> Vec<Target> {
        let mut result = Vec::new();
        for outcome in self.outcomes(key, t) {
            let target = outcome.target();
            if !result.contains(&target) {
                result.push(target);
            }
        }
        result
    }

    /// Entering contexts of `key`: the `(parent key, transition)` pairs
    /// that lead into a non-await node with this key.
    fn contexts(&self, key: &EcsKey) -> BTreeSet<(EcsKey, TransitionId)> {
        let mut result = BTreeSet::new();
        for id in self.schedule.node_ids() {
            for (t, target) in self.schedule.edges(id) {
                if self.schedule.is_await_node(self.net, *target) {
                    continue;
                }
                if &self.node_key[target] == key {
                    result.insert((self.node_key[&id].clone(), *t));
                }
            }
        }
        result
    }

    fn source_key(&self) -> EcsKey {
        self.node_key[&self.schedule.root()].clone()
    }

    /// Decides which keys become segment roots.
    fn root_keys(&self) -> Vec<EcsKey> {
        let source = self.source_key();
        let mut inline_parent: BTreeMap<EcsKey, EcsKey> = BTreeMap::new();
        let mut roots: BTreeSet<EcsKey> = BTreeSet::new();
        roots.insert(source.clone());
        for key in &self.keys {
            if *key == source {
                continue;
            }
            let contexts = self.contexts(key);
            let single = if contexts.len() == 1 {
                contexts.iter().next().cloned()
            } else {
                None
            };
            match single {
                Some((parent, t)) => {
                    // Inline only if the parent always continues into this
                    // key (a single target, never an await node).
                    let targets = self.targets(&parent, t);
                    let always =
                        targets.len() == 1 && matches!(&targets[0], Target::Key(k) if k == key);
                    if always {
                        inline_parent.insert(key.clone(), parent);
                    } else {
                        roots.insert(key.clone());
                    }
                }
                None => {
                    roots.insert(key.clone());
                }
            }
        }
        // Break inline cycles: follow parent chains; any key whose chain
        // never reaches a root becomes a root itself.
        let mut changed = true;
        while changed {
            changed = false;
            for key in &self.keys {
                if roots.contains(key) || !inline_parent.contains_key(key) {
                    continue;
                }
                let mut seen = BTreeSet::new();
                let mut cur = key.clone();
                let reaches_root = loop {
                    if roots.contains(&cur) {
                        break true;
                    }
                    if !seen.insert(cur.clone()) {
                        break false;
                    }
                    match inline_parent.get(&cur) {
                        Some(p) => cur = p.clone(),
                        None => break true,
                    }
                };
                if !reaches_root {
                    roots.insert(key.clone());
                    changed = true;
                }
            }
        }
        // Preserve deterministic order: source first, then first-seen order.
        let mut ordered = vec![source.clone()];
        for key in &self.keys {
            if *key != source && roots.contains(key) {
                ordered.push(key.clone());
            }
        }
        ordered
    }

    fn build(self) -> Result<SegmentGraph> {
        let roots = self.root_keys();
        let segment_of_root: BTreeMap<EcsKey, usize> = roots
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
        let mut segments = Vec::new();
        for (id, root) in roots.iter().enumerate() {
            let mut nodes = Vec::new();
            self.build_node(root, &segment_of_root, &mut nodes, &mut BTreeSet::new());
            let label = self.label_for(root);
            segments.push(CodeSegment { id, label, nodes });
        }
        let state_places = self.state_places(&segments);
        self.check_resolvable(&segments, &state_places)?;
        let threads = self.threads(&segment_of_root);
        Ok(SegmentGraph {
            segments,
            entry: 0,
            state_places,
            threads,
        })
    }

    /// Builds the node for `key` (and its inlined successors) into `nodes`,
    /// returning its index.
    fn build_node(
        &self,
        key: &EcsKey,
        roots: &BTreeMap<EcsKey, usize>,
        nodes: &mut Vec<SegmentNode>,
        on_path: &mut BTreeSet<EcsKey>,
    ) -> usize {
        let index = nodes.len();
        nodes.push(SegmentNode {
            ecs: key.clone(),
            branches: Vec::new(),
        });
        on_path.insert(key.clone());
        let mut branches = Vec::new();
        for &t in key {
            let targets = self.targets(key, t);
            let branch = if targets.len() == 1 {
                match &targets[0] {
                    Target::Await => Branch::Terminal(Continuation::Return),
                    Target::Key(next_key) => match roots.get(next_key) {
                        Some(&seg) => Branch::Terminal(Continuation::Goto(seg)),
                        None => {
                            if on_path.contains(next_key) {
                                // Defensive: should have been made a root by
                                // cycle breaking; fall back to a goto to the
                                // segment that owns it (the entry segment).
                                Branch::Terminal(Continuation::Goto(0))
                            } else {
                                Branch::Inline(self.build_node(next_key, roots, nodes, on_path))
                            }
                        }
                    },
                }
            } else {
                // A run-time dispatch on the task state: one arm per
                // observed (end marking, target) pair.
                let mut arms: Vec<(Marking, Box<Continuation>)> = Vec::new();
                for outcome in self.outcomes(key, t) {
                    let continuation = match outcome.target() {
                        Target::Await => Continuation::Return,
                        Target::Key(k) => Continuation::Goto(roots.get(&k).copied().unwrap_or(0)),
                    };
                    let arm = (outcome.marking().clone(), Box::new(continuation));
                    if !arms.contains(&arm) {
                        arms.push(arm);
                    }
                }
                Branch::Terminal(Continuation::Switch(arms))
            };
            branches.push((t, branch));
        }
        on_path.remove(key);
        nodes[index].branches = branches;
        index
    }

    fn label_for(&self, key: &EcsKey) -> String {
        let mut label: String = key
            .iter()
            .map(|t| sanitize(&self.net.transition(*t).name))
            .collect::<Vec<_>>()
            .join("_");
        if label.is_empty() {
            label = "empty".to_string();
        }
        format!("cs_{label}")
    }

    /// State places: every place whose value differs between two switch
    /// arms with different targets. Such places are necessarily updated by
    /// the involved transitions, so this matches the paper's intersection
    /// of "updated" and "needed for conditions".
    fn state_places(&self, segments: &[CodeSegment]) -> Vec<PlaceId> {
        let mut needed: BTreeSet<PlaceId> = BTreeSet::new();
        for segment in segments {
            for node in &segment.nodes {
                for (_, branch) in &node.branches {
                    if let Branch::Terminal(Continuation::Switch(arms)) = branch {
                        for (i, (m1, t1)) in arms.iter().enumerate() {
                            for (m2, t2) in arms.iter().skip(i + 1) {
                                if t1 == t2 {
                                    continue;
                                }
                                for p in self.net.place_ids() {
                                    if m1.tokens(p) != m2.tokens(p) {
                                        needed.insert(p);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        needed.into_iter().collect()
    }

    /// Verifies that the state places distinguish every pair of switch arms
    /// with different targets.
    fn check_resolvable(&self, segments: &[CodeSegment], state: &[PlaceId]) -> Result<()> {
        for segment in segments {
            for node in &segment.nodes {
                for (_, branch) in &node.branches {
                    if let Branch::Terminal(Continuation::Switch(arms)) = branch {
                        for (i, (m1, t1)) in arms.iter().enumerate() {
                            for (m2, t2) in arms.iter().skip(i + 1) {
                                if t1 == t2 {
                                    continue;
                                }
                                let same = state.iter().all(|p| m1.tokens(*p) == m2.tokens(*p));
                                if same {
                                    return Err(CodegenError::AmbiguousState(format!(
                                        "segment `{}` cannot distinguish markings {m1} and {m2}",
                                        segment.label
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Threads: for each await node, the segments used until the reaction
    /// reaches await nodes again.
    fn threads(&self, roots: &BTreeMap<EcsKey, usize>) -> Vec<Thread> {
        let awaits = self.schedule.await_nodes(self.net);
        let mut threads = Vec::new();
        for &start in &awaits {
            let mut segments_used: Vec<usize> = Vec::new();
            let mut ends: Vec<Marking> = Vec::new();
            let mut visited: BTreeSet<NodeId> = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                let key = &self.node_key[&node];
                if let Some(&seg) = roots.get(key) {
                    if !segments_used.contains(&seg) {
                        segments_used.push(seg);
                    }
                }
                for (_, target) in self.schedule.edges(node) {
                    if self.schedule.is_await_node(self.net, *target) {
                        let m = self.schedule.marking_owned(*target);
                        if !ends.contains(&m) {
                            ends.push(m);
                        }
                    } else {
                        stack.push(*target);
                    }
                }
            }
            threads.push(Thread {
                start: self.schedule.marking_owned(start),
                segments: segments_used,
                ends,
            });
        }
        threads
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qss_core::{find_schedule, ScheduleOptions};
    use qss_petri::{NetBuilder, TransitionKind};

    /// The Figure 8(a) net, whose schedule (Figure 10(d)) produces the code
    /// segments of Figure 14(c).
    fn figure8() -> (qss_petri::PetriNet, TransitionId) {
        let mut bl = NetBuilder::new("fig8");
        let p1 = bl.place("p1", 0);
        let p2 = bl.place("p2", 0);
        let p3 = bl.place("p3", 0);
        let a = bl.transition("a", TransitionKind::UncontrollableSource);
        let b = bl.transition("b", TransitionKind::Internal);
        let c = bl.transition("c", TransitionKind::Internal);
        let d = bl.transition("d", TransitionKind::Internal);
        let e = bl.transition("e", TransitionKind::Internal);
        bl.arc_t2p(a, p1, 1);
        bl.arc_p2t(p1, b, 1);
        bl.arc_p2t(p1, c, 1);
        bl.arc_t2p(b, p2, 1);
        bl.arc_p2t(p2, d, 1);
        bl.arc_t2p(c, p3, 1);
        bl.arc_p2t(p3, e, 2);
        bl.arc_t2p(e, p1, 1);
        let net = bl.build().unwrap();
        let a = net.transition_by_name("a").unwrap();
        (net, a)
    }

    #[test]
    fn figure8_segment_structure_matches_figure14() {
        let (net, a) = figure8();
        let schedule = find_schedule(&net, a, &ScheduleOptions::default()).unwrap();
        let graph = SegmentGraph::build(&schedule, &net).unwrap();
        // Figure 14(c) has three code segments: cs1 (a ...), cs2 (e) and
        // cs3 (bc ...).
        assert_eq!(graph.segments.len(), 3);
        // The entry segment starts with the source transition `a`.
        let entry = &graph.segments[graph.entry];
        assert_eq!(entry.root().ecs, vec![a]);
        // Exactly one state place is needed (p3 in the paper).
        assert_eq!(graph.state_places.len(), 1);
        let p3 = net.place_by_name("p3").unwrap();
        assert_eq!(graph.state_places, vec![p3]);
        // Every distinct ECS appears exactly once over all segments.
        let mut seen = BTreeSet::new();
        for s in &graph.segments {
            for n in &s.nodes {
                assert!(seen.insert(n.ecs.clone()), "duplicated ECS {:?}", n.ecs);
            }
        }
        // There are two threads (Figure 15), both starting with cs1.
        assert_eq!(graph.threads.len(), 2);
        for th in &graph.threads {
            assert_eq!(th.segments[0], graph.entry);
        }
    }

    #[test]
    fn linear_pipeline_is_one_segment() {
        let mut bl = NetBuilder::new("line");
        let p = bl.place("p", 0);
        let q = bl.place("q", 0);
        let src = bl.transition("in", TransitionKind::UncontrollableSource);
        let t1 = bl.transition("t1", TransitionKind::Internal);
        let t2 = bl.transition("t2", TransitionKind::Internal);
        bl.arc_t2p(src, p, 1);
        bl.arc_p2t(p, t1, 1);
        bl.arc_t2p(t1, q, 1);
        bl.arc_p2t(q, t2, 1);
        let net = bl.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let schedule = find_schedule(&net, src, &ScheduleOptions::default()).unwrap();
        let graph = SegmentGraph::build(&schedule, &net).unwrap();
        // Everything is deterministic: a single segment, no state places.
        assert_eq!(graph.segments.len(), 1);
        assert!(graph.state_places.is_empty());
        assert_eq!(graph.threads.len(), 1);
        assert_eq!(graph.num_nodes(), 3);
        // Its single thread returns to the initial marking.
        assert_eq!(graph.threads[0].ends, vec![net.initial_marking()]);
    }

    #[test]
    fn data_choice_produces_branching_node() {
        let mut bl = NetBuilder::new("choice");
        let p = bl.place("p", 0);
        let q = bl.place("q", 0);
        let src = bl.transition("in", TransitionKind::UncontrollableSource);
        let yes = bl.transition("yes", TransitionKind::Internal);
        let no = bl.transition("no", TransitionKind::Internal);
        let done = bl.transition("done", TransitionKind::Internal);
        bl.arc_t2p(src, p, 1);
        bl.arc_p2t(p, yes, 1);
        bl.arc_p2t(p, no, 1);
        bl.arc_t2p(yes, q, 1);
        bl.arc_t2p(no, q, 1);
        bl.arc_p2t(q, done, 1);
        let net = bl.build().unwrap();
        let src = net.transition_by_name("in").unwrap();
        let schedule = find_schedule(&net, src, &ScheduleOptions::default()).unwrap();
        let graph = SegmentGraph::build(&schedule, &net).unwrap();
        // The choice node has two branches, both eventually returning.
        let choice_node = graph
            .segments
            .iter()
            .flat_map(|s| &s.nodes)
            .find(|n| n.ecs.len() == 2)
            .expect("choice node present");
        assert_eq!(choice_node.branches.len(), 2);
        assert!(graph.state_places.is_empty());
    }

    #[test]
    fn empty_schedule_is_rejected() {
        let (net, a) = figure8();
        let empty = qss_core::Schedule::from_parts(a, Vec::new());
        assert!(SegmentGraph::build(&empty, &net).is_err());
    }
}
