//! The industrial video application of Sec. 8 (producer / filter /
//! consumer / controller): scheduling, task generation and the
//! single-task-vs-four-tasks comparison.
//!
//! Run with `cargo run --release -p qss-bench --example video_pfc [frames]`.

use qss_codegen::{generate_task, TaskOptions};
use qss_core::{schedule_system, ScheduleOptions};
use qss_sim::{
    pfc_events, pfc_system, run_multitask, run_singletask, CycleCostModel, MultiTaskConfig,
    PfcParams, SingleTaskConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let params = PfcParams::default();
    let system = pfc_system(&params)?;
    println!(
        "PFC system: {} processes, {} channels, net of {} places / {} transitions",
        system.process_names.len(),
        system.channels.len(),
        system.net.num_places(),
        system.net.num_transitions()
    );

    let schedules = schedule_system(&system, &ScheduleOptions::default())?;
    let schedule = &schedules.schedules[0];
    println!(
        "schedule for `controller.init`: {} nodes, {} edges, {} await node(s)",
        schedule.num_nodes(),
        schedule.num_edges(),
        schedule.await_nodes(&system.net).len()
    );
    for channel in &system.channels {
        println!(
            "  channel `{}` buffer bound: {}",
            channel.name,
            schedules.bound(channel.place)
        );
    }

    let task = generate_task(
        &system,
        schedule,
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )?;
    println!(
        "generated task `{}`: {} code segments, {} threads, {} state variable(s), {} lines of C",
        task.name,
        task.stats.num_segments,
        task.stats.num_threads,
        task.stats.num_state_variables,
        task.code.lines().count()
    );

    let events = pfc_events(frames);
    println!(
        "\n{:>8} | {:>12} | {:>12} | {:>6}",
        "profile", "1 task", "4 tasks", "ratio"
    );
    for profile in CycleCostModel::profiles() {
        let single = run_singletask(
            &system,
            &schedules.schedules,
            &events,
            &SingleTaskConfig::new(profile),
        )?;
        let multi = run_multitask(&system, &events, &MultiTaskConfig::new(100, profile))?;
        assert_eq!(single.outputs, multi.outputs, "implementations must agree");
        println!(
            "{:>8} | {:>12} | {:>12} | {:>6.1}",
            profile.name,
            single.cycles,
            multi.cycles,
            multi.cycles as f64 / single.cycles as f64
        );
    }
    Ok(())
}
