//! The industrial video application of Sec. 8 (producer / filter /
//! consumer / controller): scheduling, task generation and the
//! single-task-vs-four-tasks comparison, through the `Pipeline` API.
//!
//! Run with `cargo run --release --example video_pfc [frames]`.

use qss::{CostProfile, Pipeline, PipelineConfig, QssError};
use qss_sim::{pfc_events, pfc_spec, PfcParams};

fn main() -> Result<(), QssError> {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let params = PfcParams::default();

    let config = PipelineConfig {
        multitask_buffer_size: 100,
        ..PipelineConfig::default()
    };
    let scheduled = Pipeline::new(pfc_spec(&params))
        .with_config(config)
        .link()?
        .schedule()?;
    let system = &scheduled.system;
    println!(
        "PFC system: {} processes, {} channels, net of {} places / {} transitions",
        system.process_names.len(),
        system.channels.len(),
        system.net.num_places(),
        system.net.num_transitions()
    );
    let schedule = &scheduled.schedules.schedules[0];
    println!(
        "schedule for `controller.init`: {} nodes, {} edges, {} await node(s)",
        schedule.num_nodes(),
        schedule.num_edges(),
        schedule.await_nodes(&system.net).len()
    );
    for channel in &system.channels {
        println!(
            "  channel `{}` buffer bound: {}",
            channel.name,
            scheduled.schedules.bound(channel.place)
        );
    }

    let mut task = scheduled.generate()?;
    let generated = &task.tasks[0];
    println!(
        "generated task `{}`: {} code segments, {} threads, {} state variable(s), {} lines of C",
        generated.name,
        generated.stats.num_segments,
        generated.stats.num_threads,
        generated.stats.num_state_variables,
        generated.code.lines().count()
    );

    let events = pfc_events(frames);
    println!(
        "\n{:>8} | {:>12} | {:>12} | {:>6}",
        "profile", "1 task", "4 tasks", "ratio"
    );
    for profile in [
        CostProfile::Unoptimized,
        CostProfile::Optimized,
        CostProfile::Optimized2,
    ] {
        task.config.profile = profile;
        let sim = task.simulate(&events)?;
        assert!(sim.outputs_match, "implementations must agree");
        println!(
            "{:>8} | {:>12} | {:>12} | {:>6.1}",
            profile.name(),
            sim.single.cycles,
            sim.multi.cycles,
            sim.speedup
        );
    }
    Ok(())
}
