//! The false-path problem of Sec. 7.2: two processes with coupled bounded
//! loops are rejected by the conservative Petri-net abstraction, but the
//! rewrite with `SELECT` and `done` channels is schedulable.
//!
//! Run with `cargo run --example false_paths`.

use qss_core::{schedule_system, ScheduleOptions};
use qss_flowc::{examples, link, parse_process, SystemSpec};

fn build(
    a_source: &str,
    b_source: &str,
    with_done: bool,
) -> qss_flowc::Result<qss_flowc::LinkedSystem> {
    // The naive process A is modified to wait for an environment trigger
    // before each burst so that the system has an uncontrollable input to
    // schedule against; the SELECT rewrite already declares one.
    let a_source = if a_source.contains("DPORT start") {
        a_source.to_string()
    } else {
        a_source
            .replace("(Out DPORT c0", "(In DPORT start, Out DPORT c0")
            .replace("int i,", "int g, i,")
            .replace(
                "while (1) {",
                "while (1) {\n        READ_DATA(start, g, 1);",
            )
    };
    let a = parse_process(&a_source)?;
    let b = parse_process(b_source)?;
    let mut spec = SystemSpec::new("false_paths")
        .with_process(a)
        .with_process(b)
        .with_channel("A.c0", "B.c0", None)?
        .with_channel("B.c1", "A.c1", None)?;
    if with_done {
        spec = spec
            .with_channel("A.done0", "B.done0", None)?
            .with_channel("B.done1", "A.done1", None)?;
    }
    link(&spec)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The naive version: fixed-bound loops writing/reading c0 and c1.
    let naive = build(examples::FALSE_PATH_A, examples::FALSE_PATH_B, false)?;
    match schedule_system(&naive, &ScheduleOptions::default()) {
        Ok(_) => println!("naive version: unexpectedly schedulable"),
        Err(e) => {
            println!("naive version: NOT schedulable, as predicted by Sec. 7.2\n  reason: {e}")
        }
    }

    // The rewrite with SELECT and done channels.
    let fixed = build(
        examples::FALSE_PATH_A_SELECT,
        examples::FALSE_PATH_B_SELECT,
        true,
    )?;
    match schedule_system(&fixed, &ScheduleOptions::default()) {
        Ok(schedules) => {
            let s = &schedules.schedules[0];
            println!(
                "SELECT version: schedulable — {} nodes, {} edges, channel bounds all finite",
                s.num_nodes(),
                s.num_edges()
            );
            for channel in &fixed.channels {
                println!(
                    "  channel `{}` bound {}",
                    channel.name,
                    schedules.bound(channel.place)
                );
            }
        }
        Err(e) => println!("SELECT version failed to schedule: {e}"),
    }
    Ok(())
}
