//! The termination-criterion comparison of Sec. 4.4 (Figure 7): pruning
//! the schedule search with a-priori place bounds requires bounds that grow
//! with the divider parameter `k`, while the irrelevant-marking criterion
//! adapts automatically.
//!
//! Run with `cargo run --example irrelevance`.

use qss_bench::experiments::divider_net;
use qss_core::{find_schedule_with_stats, ScheduleOptions, TerminationKind};

fn main() {
    println!("divider net: transition b needs k tokens of p1, c needs k tokens of p2");
    println!(
        "{:>4} | {:>14} | {:>14} | {:>18}",
        "k", "bound k-1", "bound k", "irrelevance"
    );
    println!("{}", "-".repeat(60));
    for k in [3u32, 5, 8, 13] {
        let (net, source) = divider_net(k);
        let run = |termination| {
            let opts = ScheduleOptions {
                termination,
                ..Default::default()
            };
            find_schedule_with_stats(&net, source, &opts)
                .map(|(_, st)| format!("{} nodes", st.nodes_created))
                .unwrap_or_else(|_| "no schedule".to_string())
        };
        println!(
            "{:>4} | {:>14} | {:>14} | {:>18}",
            k,
            run(TerminationKind::PlaceBounds { default: k - 1 }),
            run(TerminationKind::PlaceBounds { default: k }),
            run(TerminationKind::Irrelevance)
        );
    }
    println!(
        "\nno constant bound works for every k; the irrelevance criterion needs no bound at all"
    );
}
