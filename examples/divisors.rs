//! The `divisors` process of Figure 1: compilation to the Petri net of
//! Figure 3, scheduling and task generation.
//!
//! Run with `cargo run --example divisors`.

use qss_codegen::{generate_task, TaskOptions};
use qss_core::{schedule_system, ScheduleOptions};
use qss_flowc::{compile, link, parse_process, SystemSpec};
use qss_petri::dot::to_dot;
use qss_sim::{run_singletask, CycleCostModel, EnvEvent, SingleTaskConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = parse_process(qss_flowc::examples::DIVISORS)?;

    // Per-process compilation (Figure 3): the Petri net with dangling port
    // places, printable as Graphviz DOT.
    let compiled = compile(&process)?;
    println!(
        "compiled `divisors`: {} places, {} transitions",
        compiled.net.num_places(),
        compiled.net.num_transitions()
    );
    println!(
        "\nGraphviz of the compiled net (Figure 3):\n{}",
        to_dot(&compiled.net)
    );

    // Linking against the environment (in/max/all all unconnected) and
    // scheduling the uncontrollable `in` port.
    let spec = SystemSpec::new("divisors_system").with_process(process);
    let system = link(&spec)?;
    let schedules = schedule_system(&system, &ScheduleOptions::default())?;
    let schedule = &schedules.schedules[0];
    println!(
        "schedule for `divisors.in`: {} nodes, {} edges",
        schedule.num_nodes(),
        schedule.num_edges()
    );

    let task = generate_task(
        &system,
        schedule,
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )?;
    println!("\ngenerated task:\n{}", task.code);

    // Execute the generated task on a few inputs: the values written to
    // `max` and `all` are the divisors of each input.
    let events: Vec<EnvEvent> = [12i64, 9, 7]
        .into_iter()
        .map(|n| EnvEvent::new("divisors", "in", n))
        .collect();
    let report = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::optimized()),
    )?;
    println!("max outputs: {:?}", report.output("divisors", "max"));
    println!("all outputs: {:?}", report.output("divisors", "all"));
    Ok(())
}
