//! Quickstart: the full flow on a two-process pipeline.
//!
//! 1. write two FlowC processes and connect them with a channel,
//! 2. link the network into a single Petri net,
//! 3. compute the quasi-static schedule of the uncontrollable input,
//! 4. generate the single sequential task (C code),
//! 5. execute both the 4-task baseline and the generated task on the same
//!    workload and compare cycles.
//!
//! Run with `cargo run -p qss-bench --example quickstart`.

use qss_codegen::{generate_task, TaskOptions};
use qss_core::{schedule_system, ScheduleOptions};
use qss_flowc::{link, parse_process, SystemSpec};
use qss_sim::{
    run_multitask, run_singletask, CycleCostModel, EnvEvent, MultiTaskConfig, SingleTaskConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two FlowC processes: a producer triggered by the environment and a
    //    consumer that accumulates and reports a running sum.
    let producer = parse_process(
        "PROCESS producer (In DPORT trigger, Out DPORT data) {
             int t;
             while (1) {
                 READ_DATA(trigger, t, 1);
                 WRITE_DATA(data, t * 2, 1);
             }
         }",
    )?;
    let consumer = parse_process(
        "PROCESS consumer (In DPORT data, Out DPORT sum) {
             int x, s;
             while (1) {
                 READ_DATA(data, x, 1);
                 s = s + x;
                 WRITE_DATA(sum, s, 1);
             }
         }",
    )?;
    let spec = SystemSpec::new("quickstart")
        .with_process(producer)
        .with_process(consumer)
        .with_channel("producer.data", "consumer.data", None)?;

    // 2. Link into one Petri net.
    let system = link(&spec)?;
    println!(
        "linked net: {} places, {} transitions, {} channel(s)",
        system.net.num_places(),
        system.net.num_transitions(),
        system.channels.len()
    );

    // 3. One schedule per uncontrollable input port.
    let schedules = schedule_system(&system, &ScheduleOptions::default())?;
    let schedule = &schedules.schedules[0];
    println!(
        "schedule: {} nodes, {} edges, {} await node(s)",
        schedule.num_nodes(),
        schedule.num_edges(),
        schedule.await_nodes(&system.net).len()
    );
    for channel in &system.channels {
        println!(
            "  channel `{}` needs a buffer of {}",
            channel.name,
            schedules.bound(channel.place)
        );
    }

    // 4. Generate the sequential task.
    let task = generate_task(
        &system,
        schedule,
        &schedules.channel_bounds,
        &TaskOptions::default(),
    )?;
    println!("\ngenerated task `{}`:\n{}", task.name, task.code);

    // 5. Execute both implementations on the same workload.
    let events: Vec<EnvEvent> = (1..=5)
        .map(|i| EnvEvent::new("producer", "trigger", i))
        .collect();
    let single = run_singletask(
        &system,
        &schedules.schedules,
        &events,
        &SingleTaskConfig::new(CycleCostModel::unoptimized()),
    )?;
    let multi = run_multitask(
        &system,
        &events,
        &MultiTaskConfig::new(4, CycleCostModel::unoptimized()),
    )?;
    assert_eq!(single.outputs, multi.outputs);
    println!(
        "outputs (both implementations): {:?}",
        single.output("consumer", "sum")
    );
    println!(
        "cycles: single task {} vs 4 tasks {} ({:.1}x faster, {} context switches avoided)",
        single.cycles,
        multi.cycles,
        multi.cycles as f64 / single.cycles as f64,
        multi.context_switches
    );
    Ok(())
}
