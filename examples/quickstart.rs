//! Quickstart: the full flow on a two-process pipeline, through the
//! staged `Pipeline` API.
//!
//! 1. write two FlowC processes and connect them with a channel,
//! 2. `link()` the network into a single Petri net,
//! 3. `schedule()` the quasi-static schedule of the uncontrollable input,
//! 4. `generate()` the single sequential task (C code),
//! 5. `simulate()` both the 3-task baseline and the generated task on the
//!    same workload and compare cycles.
//!
//! Run with `cargo run --example quickstart`.

use qss::{EnvEvent, Pipeline, QssError};

fn main() -> Result<(), QssError> {
    // 1. Two FlowC processes — a producer triggered by the environment and
    //    a consumer that accumulates a running sum — plus the channel
    //    between them, all in one system file.
    let pipeline = Pipeline::from_source(
        r#"
        SYSTEM quickstart {
            CHANNEL producer.data -> consumer.data;
        }
        PROCESS producer (In DPORT trigger, Out DPORT data) {
            int t;
            while (1) {
                READ_DATA(trigger, t, 1);
                WRITE_DATA(data, t * 2, 1);
            }
        }
        PROCESS consumer (In DPORT data, Out DPORT sum) {
            int x, s;
            while (1) {
                READ_DATA(data, x, 1);
                s = s + x;
                WRITE_DATA(sum, s, 1);
            }
        }
        "#,
    )?;

    // 2. Link into one Petri net.
    let linked = pipeline.link()?;
    println!(
        "linked net: {} places, {} transitions, {} channel(s)",
        linked.system.net.num_places(),
        linked.system.net.num_transitions(),
        linked.system.channels.len()
    );

    // 3. One schedule per uncontrollable input port.
    let scheduled = linked.schedule()?;
    let schedule = &scheduled.schedules.schedules[0];
    println!(
        "schedule: {} nodes, {} edges, {} await node(s)",
        schedule.num_nodes(),
        schedule.num_edges(),
        schedule.await_nodes(&scheduled.system.net).len()
    );
    for channel in &scheduled.system.channels {
        println!(
            "  channel `{}` needs a buffer of {}",
            channel.name,
            scheduled.schedules.bound(channel.place)
        );
    }

    // 4. Generate the sequential task.
    let task = scheduled.generate()?;
    println!(
        "\ngenerated task `{}`:\n{}",
        task.tasks[0].name, task.tasks[0].code
    );

    // 5. Execute both implementations on the same workload.
    let events: Vec<EnvEvent> = (1..=5)
        .map(|i| EnvEvent::new("producer", "trigger", i))
        .collect();
    let sim = task.simulate(&events)?;
    assert!(sim.outputs_match);
    println!(
        "outputs (both implementations): {:?}",
        sim.single.output("consumer", "sum")
    );
    println!(
        "cycles: single task {} vs multi-task {} ({:.1}x faster, {} context switches avoided)",
        sim.single.cycles, sim.multi.cycles, sim.speedup, sim.multi.context_switches
    );

    // Every stage artifact serializes to JSON for archival / services.
    println!(
        "\nmachine-readable report:\n{}",
        task.report(Some(&sim)).to_json_pretty()
    );
    Ok(())
}
